// PROSITE substrate tests: the pattern parser against the published syntax,
// the embedded motif samples, the synthetic generator, and the r-benchmark.
#include <gtest/gtest.h>

#include <set>

#include "sfa/automata/ops.hpp"
#include "sfa/prosite/patterns.hpp"
#include "sfa/prosite/prosite_parser.hpp"

namespace sfa {
namespace {

const Alphabet& kAmino = Alphabet::amino();

bool matches(const Dfa& dfa, const std::string& text) {
  return dfa.accepts(kAmino.encode(text));
}

TEST(PrositeParser, Ps00001Glycosylation) {
  // N-{P}-[ST]-{P}: N, then anything but P, then S or T, then anything but P.
  const Dfa dfa = compile_prosite("N-{P}-[ST]-{P}.");
  EXPECT_TRUE(matches(dfa, "NGSG"));
  EXPECT_TRUE(matches(dfa, "AAANATAAA"));
  EXPECT_FALSE(matches(dfa, "NPSG"));  // P in position 2
  EXPECT_FALSE(matches(dfa, "NGSP"));  // P in position 4
  EXPECT_FALSE(matches(dfa, "NGAG"));  // position 3 not S/T
}

TEST(PrositeParser, ExactCounts) {
  const Dfa dfa = compile_prosite("[RK](2)-x-[ST].");
  EXPECT_TRUE(matches(dfa, "RKAS"));
  EXPECT_TRUE(matches(dfa, "AAKRCTAA"));
  EXPECT_FALSE(matches(dfa, "RAS"));  // only one [RK]
}

TEST(PrositeParser, RangeCounts) {
  const Dfa dfa = compile_prosite("C-x(2,4)-C.");
  EXPECT_FALSE(matches(dfa, "CAC"));
  EXPECT_TRUE(matches(dfa, "CAAC"));
  EXPECT_TRUE(matches(dfa, "CAAAAC"));
  // x(5) gap alone wouldn't match... but match-anywhere lets an inner C
  // start a new attempt; craft carefully: DDDDDD has no C at all.
  EXPECT_FALSE(matches(dfa, "DDDDDD"));
}

TEST(PrositeParser, Anchors) {
  const Dfa start_anchored = compile_prosite("<M-A.");
  EXPECT_TRUE(matches(start_anchored, "MAK"));
  EXPECT_FALSE(matches(start_anchored, "KMAK"));

  const Dfa end_anchored = compile_prosite("G-K>.");
  EXPECT_TRUE(matches(end_anchored, "AAGK"));
  EXPECT_FALSE(matches(end_anchored, "GKAA"));

  const Dfa both = compile_prosite("<R-G-D>.");
  EXPECT_TRUE(matches(both, "RGD"));
  EXPECT_FALSE(matches(both, "ARGD"));
  EXPECT_FALSE(matches(both, "RGDA"));
}

TEST(PrositeParser, LowercaseXAndWhitespaceTolerated) {
  const Dfa a = compile_prosite("R - x - D.");
  const Dfa b = compile_prosite("R-X-D.");
  EXPECT_TRUE(dfa_equivalent(a, b));
}

TEST(PrositeParser, TrailingPeriodOptional) {
  const Dfa a = compile_prosite("R-G-D.");
  const Dfa b = compile_prosite("R-G-D");
  EXPECT_TRUE(dfa_equivalent(a, b));
}

TEST(PrositeParser, ErrorsReportPosition) {
  EXPECT_THROW(parse_prosite(""), PrositeParseError);
  EXPECT_THROW(parse_prosite("N-{P-[ST]."), PrositeParseError);
  EXPECT_THROW(parse_prosite("N-[]."), PrositeParseError);
  EXPECT_THROW(parse_prosite("B-G."), PrositeParseError);   // B not amino
  EXPECT_THROW(parse_prosite("R-G-D. extra"), PrositeParseError);
  EXPECT_THROW(parse_prosite("R(4,2)."), PrositeParseError);
  EXPECT_THROW(parse_prosite("R-(3)."), PrositeParseError);
}

TEST(PrositeParser, ParsedStructure) {
  const PrositePattern p = parse_prosite("<A-x(2,3)-[DE]>.");
  EXPECT_TRUE(p.anchored_start);
  EXPECT_TRUE(p.anchored_end);
  EXPECT_EQ(p.regex.kind, RegexKind::kConcat);
  ASSERT_EQ(p.regex.children.size(), 3u);
  EXPECT_EQ(p.regex.children[1].kind, RegexKind::kRepeat);
  EXPECT_EQ(p.regex.children[1].min_rep, 2);
  EXPECT_EQ(p.regex.children[1].max_rep, 3);
}

// ---- Embedded samples -------------------------------------------------------------

TEST(Samples, AllParseCleanly) {
  for (const auto& p : prosite_samples()) {
    SCOPED_TRACE(p.id);
    EXPECT_NO_THROW(parse_prosite(p.pattern));
  }
}

TEST(Samples, UniqueIds) {
  std::set<std::string> ids;
  for (const auto& p : prosite_samples()) ids.insert(p.id);
  EXPECT_EQ(ids.size(), prosite_samples().size());
}

TEST(Samples, SmallOnesCompileToExpectedSizes) {
  // DFA sizes for the small motifs (measured; doubles as a regression pin
  // for the whole regex->NFA->DFA->minimize pipeline).
  const std::map<std::string, unsigned> expected = {
      {"PS00001", 6}, {"PS00016", 4}, {"PS00005", 5}, {"PS00006", 9},
  };
  for (const auto& p : prosite_samples()) {
    const auto it = expected.find(p.id);
    if (it == expected.end()) continue;
    EXPECT_EQ(compile_prosite(p.pattern).size(), it->second) << p.id;
  }
}

TEST(Samples, KnownPositiveSequences) {
  // Real motif semantics: P-loop (PS00017) in a synthetic kinase-like
  // fragment; RGD (PS00016) in fibronectin-like fragment.
  const Dfa ploop = compile_prosite("[AG]-x(4)-G-K-[ST].");
  EXPECT_TRUE(matches(ploop, "MGSSSSGKTLLAQ"));  // G-SSSS-G-K-T
  const Dfa rgd = compile_prosite("R-G-D.");
  EXPECT_TRUE(matches(rgd, "AVTGRGDSPAS"));
}

// ---- Synthetic generator -----------------------------------------------------------

TEST(SyntheticGenerator, DeterministicPerSeed) {
  EXPECT_EQ(synthetic_prosite_pattern(7), synthetic_prosite_pattern(7));
  EXPECT_NE(synthetic_prosite_pattern(7), synthetic_prosite_pattern(8));
}

TEST(SyntheticGenerator, AllOutputsParse) {
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    const std::string pat = synthetic_prosite_pattern(seed);
    SCOPED_TRACE("seed " + std::to_string(seed) + ": " + pat);
    EXPECT_NO_THROW(parse_prosite(pat));
  }
}

TEST(SyntheticGenerator, RespectsElementBounds) {
  SyntheticPatternOptions opt;
  opt.min_elements = 2;
  opt.max_elements = 3;
  opt.p_repeat = 0.0;
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const std::string pat = synthetic_prosite_pattern(seed, opt);
    const auto dashes =
        static_cast<unsigned>(std::count(pat.begin(), pat.end(), '-'));
    EXPECT_GE(dashes + 1, 2u) << pat;
    EXPECT_LE(dashes + 1, 3u) << pat;
  }
}

TEST(BenchmarkPatterns, RealSamplesFirstThenSynthetic) {
  const auto set = benchmark_patterns(prosite_samples().size() + 5, 2017);
  EXPECT_EQ(set.size(), prosite_samples().size() + 5);
  EXPECT_EQ(set.front().id, prosite_samples().front().id);
  EXPECT_EQ(set.back().id.substr(0, 3), "SYN");
  // Deterministic.
  const auto again = benchmark_patterns(set.size(), 2017);
  for (std::size_t i = 0; i < set.size(); ++i)
    EXPECT_EQ(set[i].pattern, again[i].pattern);
}

// ---- r-benchmark --------------------------------------------------------------------

TEST(RBenchmarkDfa, ShapeAndDeterminism) {
  const Dfa dfa = make_r_benchmark_dfa(50, 1);
  EXPECT_EQ(dfa.size(), 52u);
  EXPECT_TRUE(dfa.complete());
  EXPECT_EQ(dfa.accepting_count(), 1u);
  EXPECT_EQ(dfa.find_sink(), 51u);
  // Deterministic per (length, seed).
  const Dfa again = make_r_benchmark_dfa(50, 1);
  EXPECT_TRUE(dfa_equivalent(dfa, again));
  const Dfa other = make_r_benchmark_dfa(50, 2);
  EXPECT_FALSE(dfa_equivalent(dfa, other));
}

TEST(RBenchmarkDfa, AcceptsExactlyItsString) {
  const Dfa dfa = make_r_benchmark_dfa(30, 9);
  // Recover the string by following non-sink transitions.
  std::vector<Symbol> str;
  Dfa::StateId q = dfa.start();
  const Dfa::StateId sink = dfa.find_sink();
  while (!dfa.accepting(q)) {
    bool advanced = false;
    for (unsigned s = 0; s < dfa.num_symbols(); ++s) {
      const Dfa::StateId to = dfa.transition(q, static_cast<Symbol>(s));
      if (to != sink) {
        str.push_back(static_cast<Symbol>(s));
        q = to;
        advanced = true;
        break;
      }
    }
    ASSERT_TRUE(advanced);
  }
  EXPECT_EQ(str.size(), 30u);
  EXPECT_TRUE(dfa.accepts(str));
  // Any prefix or extension is rejected (no catenation!).
  auto longer = str;
  longer.push_back(0);
  EXPECT_FALSE(dfa.accepts(longer));
  str.pop_back();
  EXPECT_FALSE(dfa.accepts(str));
}

}  // namespace
}  // namespace sfa
