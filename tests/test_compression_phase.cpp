// Three-phase compressed construction tests (paper §III-C): triggering,
// correctness of the rebuilt hash table, compressed-mode dedup, and the
// compressed result's usability for matching.
#include <gtest/gtest.h>

#include "sfa/compress/registry.hpp"
#include "sfa/core/build.hpp"
#include "sfa/core/equivalence.hpp"
#include "sfa/core/match.hpp"
#include "sfa/prosite/patterns.hpp"
#include "sfa/prosite/prosite_parser.hpp"
#include "sfa/support/rng.hpp"

namespace sfa {
namespace {

BuildOptions compressing_options(unsigned threads,
                                 std::size_t threshold = 1) {
  BuildOptions opt;
  opt.num_threads = threads;
  // A threshold of a few bytes forces the phase switch on the first
  // allocation check — the "set the memory manager's threshold low to force
  // compression" methodology of Table II's tractable rows.
  opt.memory_threshold_bytes = threshold;
  return opt;
}

TEST(CompressionPhase, TriggersAndVerifies) {
  const Dfa dfa = compile_prosite("C-x-[DN]-x(4)-[FY]-x-C-x-C.");
  BuildStats stats;
  const Sfa sfa = build_sfa_parallel(dfa, compressing_options(2), &stats);
  EXPECT_TRUE(stats.compression_triggered);
  EXPECT_GT(stats.compression_seconds, 0.0);
  const VerifyReport report =
      verify_sfa(sfa, dfa, {.random_inputs = 50, .structural_samples = 60});
  EXPECT_TRUE(report.ok) << report.first_failure;
}

TEST(CompressionPhase, StateCountUnaffectedByCompression) {
  const Dfa dfa = compile_prosite("[RK]-x(2,3)-[DE]-x(2,3)-Y.");
  const Sfa plain = build_sfa_transposed(dfa);
  for (unsigned threads : {1u, 2u, 4u}) {
    BuildStats stats;
    const Sfa compressed =
        build_sfa_parallel(dfa, compressing_options(threads), &stats);
    EXPECT_TRUE(stats.compression_triggered);
    EXPECT_EQ(compressed.num_states(), plain.num_states())
        << threads << " threads";
  }
}

TEST(CompressionPhase, ResultMappingsAreCompressed) {
  const Dfa dfa = compile_prosite("[AG]-x(4)-G-K-[ST].");
  BuildStats stats;
  const Sfa sfa = build_sfa_parallel(dfa, compressing_options(2), &stats);
  EXPECT_TRUE(sfa.mappings_compressed());
  EXPECT_LT(stats.mapping_bytes_stored, stats.mapping_bytes_uncompressed);
  EXPECT_GT(stats.compression_ratio(), 1.0);
  // Mappings decompress to correct values: spot-check via full verify.
  EXPECT_TRUE(verify_sfa(sfa, dfa, {.random_inputs = 30}).ok);
}

TEST(CompressionPhase, HighThresholdNeverTriggers) {
  const Dfa dfa = compile_prosite("[ST]-x(2)-[DE].");
  BuildStats stats;
  const Sfa sfa = build_sfa_parallel(
      dfa, compressing_options(2, /*threshold=*/1u << 30), &stats);
  EXPECT_FALSE(stats.compression_triggered);
  EXPECT_FALSE(sfa.mappings_compressed());
  EXPECT_TRUE(verify_sfa(sfa, dfa).ok);
}

TEST(CompressionPhase, MidConstructionThreshold) {
  // Threshold sized so the switch happens mid-flight (some states are built
  // uncompressed, the rest in compressed mode).
  const Dfa dfa = compile_prosite("C-x(2,4)-C-x(3)-H.");  // 2085 states, n=36
  BuildStats stats;
  const Sfa sfa = build_sfa_parallel(
      dfa, compressing_options(4, /*threshold=*/64 * 1024), &stats);
  EXPECT_TRUE(stats.compression_triggered);
  EXPECT_EQ(sfa.num_states(), build_sfa_transposed(dfa).num_states());
  EXPECT_TRUE(verify_sfa(sfa, dfa, {.random_inputs = 40}).ok);
}

TEST(CompressionPhase, AlternativeCodecs) {
  const Dfa dfa = compile_prosite("[AG]-x(4)-G-K-[ST].");
  const Sfa reference = build_sfa_transposed(dfa);
  for (const char* codec_name : {"rle", "lz77", "huffman", "deflate-like"}) {
    SCOPED_TRACE(codec_name);
    BuildOptions opt = compressing_options(2);
    opt.codec = find_codec(codec_name);
    ASSERT_NE(opt.codec, nullptr);
    BuildStats stats;
    const Sfa sfa = build_sfa_parallel(dfa, opt, &stats);
    EXPECT_TRUE(stats.compression_triggered);
    EXPECT_EQ(sfa.num_states(), reference.num_states());
    EXPECT_TRUE(verify_sfa(sfa, dfa, {.random_inputs = 20}).ok);
  }
}

TEST(CompressionPhase, CompressedSfaStillMatches) {
  const Dfa dfa = compile_prosite("R-G-D.");
  const Sfa sfa = build_sfa_parallel(dfa, compressing_options(2));
  const Alphabet& amino = Alphabet::amino();
  const auto yes = amino.encode("MAAARGDLLK");
  const auto no = amino.encode("MAAARDGLLK");
  EXPECT_TRUE(match_sfa_sequential(sfa, yes).accepted);
  EXPECT_FALSE(match_sfa_sequential(sfa, no).accepted);
}

TEST(CompressionPhase, CompressionCostsTime) {
  // Table II's message: compression overhead is real.  Compare wall time
  // with and without forced compression on the same workload.
  const Dfa dfa = compile_prosite("C-x-[DN]-x(4)-[FY]-x-C-x-C.");
  BuildStats plain_stats, comp_stats;
  BuildOptions plain;
  plain.num_threads = 1;
  build_sfa_parallel(dfa, plain, &plain_stats);
  build_sfa_parallel(dfa, compressing_options(1), &comp_stats);
  EXPECT_GT(comp_stats.seconds, plain_stats.seconds);
}

TEST(CompressionPhase, SinkHeavyStatesReachHighRatios) {
  // r-benchmark SFA states are sink-dominated: expect strong compression
  // (the 95x-style result, scaled down to our test size).
  const Dfa dfa = make_r_benchmark_dfa(300, 500);
  BuildStats stats;
  const Sfa sfa = build_sfa_parallel(dfa, compressing_options(2), &stats);
  EXPECT_TRUE(stats.compression_triggered);
  EXPECT_GT(stats.compression_ratio(), 5.0);
  EXPECT_TRUE(verify_sfa(sfa, dfa, {.random_inputs = 30}).ok);
}

}  // namespace
}  // namespace sfa
