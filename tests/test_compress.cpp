// Compression substrate tests: roundtrips for every codec on adversarial
// inputs, Huffman internals, the registry harness, and the SFA-state
// compressibility property the paper's §III-C relies on.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "sfa/compress/deflate_like.hpp"
#include "sfa/compress/huffman.hpp"
#include "sfa/compress/lz77.hpp"
#include "sfa/compress/registry.hpp"
#include "sfa/compress/rle.hpp"
#include "sfa/core/build.hpp"
#include "sfa/prosite/patterns.hpp"
#include "sfa/prosite/prosite_parser.hpp"
#include "sfa/support/rng.hpp"

namespace sfa {
namespace {

Bytes make_input(std::size_t len, double zero_bias, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Bytes b(len);
  for (auto& v : b)
    v = rng.chance(zero_bias) ? 0 : static_cast<std::uint8_t>(rng.next());
  return b;
}

void check_roundtrip(const Codec& codec, const Bytes& input) {
  const Bytes comp = codec.compress(ByteView(input.data(), input.size()));
  const Bytes back =
      codec.decompress(ByteView(comp.data(), comp.size()), input.size());
  ASSERT_EQ(back, input) << codec.name() << " size " << input.size();
}

class CodecRoundtrip : public ::testing::TestWithParam<const Codec*> {};

TEST_P(CodecRoundtrip, Empty) { check_roundtrip(*GetParam(), {}); }

TEST_P(CodecRoundtrip, SingleByte) { check_roundtrip(*GetParam(), {42}); }

TEST_P(CodecRoundtrip, AllSameByte) {
  check_roundtrip(*GetParam(), Bytes(10000, 7));
}

TEST_P(CodecRoundtrip, AllDistinctBytes) {
  Bytes b(256);
  std::iota(b.begin(), b.end(), 0);
  check_roundtrip(*GetParam(), b);
}

TEST_P(CodecRoundtrip, IncompressibleRandom) {
  check_roundtrip(*GetParam(), make_input(5000, 0.0, 1));
}

TEST_P(CodecRoundtrip, SkewedTowardsZero) {
  check_roundtrip(*GetParam(), make_input(5000, 0.9, 2));
}

TEST_P(CodecRoundtrip, RepeatingPattern) {
  Bytes b;
  for (int i = 0; i < 500; ++i)
    b.insert(b.end(), {0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x01});
  check_roundtrip(*GetParam(), b);
}

TEST_P(CodecRoundtrip, RandomLengthsSweep) {
  Xoshiro256 rng(3);
  for (int trial = 0; trial < 30; ++trial)
    check_roundtrip(*GetParam(),
                    make_input(rng.below(3000), rng.unit(), rng.next()));
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, CodecRoundtrip,
                         ::testing::ValuesIn(all_codecs()),
                         [](const auto& info) {
                           return std::string(info.param->name()) == "deflate-like"
                                      ? std::string("deflate_like")
                                      : std::string(info.param->name());
                         });

// ---- Codec-specific behaviour ---------------------------------------------------

TEST(Rle, CompressesRuns) {
  const RleCodec rle;
  const Bytes input(1000, 9);
  const Bytes comp = rle.compress(ByteView(input.data(), input.size()));
  EXPECT_LE(comp.size(), 10u);  // ceil(1000/255) pairs
}

TEST(Rle, RejectsCorruptStream) {
  const RleCodec rle;
  const Bytes bad = {0x01};  // odd length
  EXPECT_THROW(rle.decompress(ByteView(bad.data(), bad.size()), 1),
               std::runtime_error);
  const Bytes zero_run = {0x00, 0x41};
  EXPECT_THROW(rle.decompress(ByteView(zero_run.data(), zero_run.size()), 0),
               std::runtime_error);
}

TEST(Lz77, FindsLongMatches) {
  const Lz77Codec lz;
  Bytes input;
  const char* phrase = "simultaneous finite automata ";
  for (int i = 0; i < 100; ++i)
    input.insert(input.end(), phrase, phrase + 29);
  const Bytes comp = lz.compress(ByteView(input.data(), input.size()));
  EXPECT_LT(comp.size(), input.size() / 10);
}

TEST(Lz77, OverlappingMatchSelfExtends) {
  // "abcabcabc..." forces dist < len copies.
  const Lz77Codec lz;
  Bytes input;
  for (int i = 0; i < 1000; ++i) input.push_back("abc"[i % 3]);
  check_roundtrip(lz, input);
}

TEST(Lz77, RejectsBadDistance) {
  const Lz77Codec lz;
  Bytes bad = {0x01, 0x05, 0x10};  // match len 5 dist 16 with empty history
  EXPECT_THROW(lz.decompress(ByteView(bad.data(), bad.size()), 5),
               std::runtime_error);
}

TEST(Lz77, Varints) {
  Bytes out;
  detail::put_varint(out, 0);
  detail::put_varint(out, 127);
  detail::put_varint(out, 128);
  detail::put_varint(out, 1234567890123ull);
  std::size_t pos = 0;
  EXPECT_EQ(detail::get_varint(ByteView(out.data(), out.size()), pos), 0u);
  EXPECT_EQ(detail::get_varint(ByteView(out.data(), out.size()), pos), 127u);
  EXPECT_EQ(detail::get_varint(ByteView(out.data(), out.size()), pos), 128u);
  EXPECT_EQ(detail::get_varint(ByteView(out.data(), out.size()), pos),
            1234567890123ull);
  EXPECT_EQ(pos, out.size());
  EXPECT_THROW(detail::get_varint(ByteView(out.data(), 0), pos),
               std::runtime_error);
}

TEST(Huffman, CodeLengthsSatisfyKraft) {
  std::uint64_t freq[256] = {};
  Xoshiro256 rng(4);
  for (int i = 0; i < 256; ++i) freq[i] = rng.below(10000);
  std::uint8_t lengths[256];
  detail::huffman_code_lengths(freq, lengths, HuffmanCodec::kMaxCodeLength);
  double kraft = 0;
  for (int i = 0; i < 256; ++i) {
    if (freq[i]) EXPECT_GT(lengths[i], 0u);
    EXPECT_LE(lengths[i], HuffmanCodec::kMaxCodeLength);
    if (lengths[i]) kraft += std::pow(2.0, -static_cast<double>(lengths[i]));
  }
  EXPECT_LE(kraft, 1.0 + 1e-9);
}

TEST(Huffman, ExtremeSkewHitsLengthCap) {
  // Exponential frequencies force raw depths > 15; the fix-up must cap them.
  std::uint64_t freq[256] = {};
  std::uint64_t f = 1;
  for (int i = 0; i < 40; ++i) {
    freq[i] = f;
    f = f * 2 + 1;
  }
  std::uint8_t lengths[256];
  detail::huffman_code_lengths(freq, lengths, HuffmanCodec::kMaxCodeLength);
  double kraft = 0;
  for (int i = 0; i < 256; ++i) {
    EXPECT_LE(lengths[i], HuffmanCodec::kMaxCodeLength);
    if (lengths[i]) kraft += std::pow(2.0, -static_cast<double>(lengths[i]));
  }
  EXPECT_LE(kraft, 1.0 + 1e-9);
  // Roundtrip under the capped code.
  const HuffmanCodec codec;
  Bytes input;
  Xoshiro256 rng(5);
  for (int i = 0; i < 5000; ++i)
    input.push_back(static_cast<std::uint8_t>(rng.below(40)));
  check_roundtrip(codec, input);
}

TEST(Huffman, MoreFrequentSymbolsGetShorterCodes) {
  std::uint64_t freq[256] = {};
  freq['a'] = 1000;
  freq['b'] = 100;
  freq['c'] = 10;
  freq['d'] = 1;
  std::uint8_t lengths[256];
  detail::huffman_code_lengths(freq, lengths, 15);
  EXPECT_LE(lengths['a'], lengths['b']);
  EXPECT_LE(lengths['b'], lengths['c']);
  EXPECT_LE(lengths['c'], lengths['d']);
}

TEST(Huffman, CanonicalCodesArePrefixFree) {
  std::uint64_t freq[256] = {};
  Xoshiro256 rng(6);
  for (int i = 0; i < 50; ++i) freq[rng.below(256)] += 1 + rng.below(100);
  std::uint8_t lengths[256];
  std::uint16_t codes[256];
  detail::huffman_code_lengths(freq, lengths, 15);
  detail::canonical_codes(lengths, codes);
  for (int a = 0; a < 256; ++a) {
    if (!lengths[a]) continue;
    for (int b = 0; b < 256; ++b) {
      if (a == b || !lengths[b] || lengths[b] < lengths[a]) continue;
      // code[a] must not be a prefix of code[b].
      const std::uint16_t prefix =
          static_cast<std::uint16_t>(codes[b] >> (lengths[b] - lengths[a]));
      EXPECT_FALSE(prefix == codes[a] && a != b)
          << "symbol " << a << " prefixes " << b;
    }
  }
}

TEST(DeflateLike, StoredFallbackForIncompressible) {
  const DeflateLikeCodec codec;
  const Bytes noise = make_input(200, 0.0, 7);
  const Bytes comp = codec.compress(ByteView(noise.data(), noise.size()));
  EXPECT_LE(comp.size(), noise.size() + 1);  // never expands past 1 byte
  check_roundtrip(codec, noise);
}

TEST(DeflateLike, BeatsRleOnStructuredData) {
  // Periodic-but-not-constant data: RLE can't help, LZ77 can.
  Bytes input;
  for (int i = 0; i < 2000; ++i) input.push_back(static_cast<std::uint8_t>(i % 23));
  const DeflateLikeCodec deflate;
  const RleCodec rle;
  const auto d = deflate.compress(ByteView(input.data(), input.size()));
  const auto r = rle.compress(ByteView(input.data(), input.size()));
  EXPECT_LT(d.size(), r.size());
}

// ---- Registry / Squash-style harness ------------------------------------------------

TEST(Registry, FindsAllCodecsByName) {
  for (const char* name : {"store", "rle", "lz77", "huffman", "deflate-like"})
    EXPECT_NE(find_codec(name), nullptr) << name;
  EXPECT_EQ(find_codec("zstd"), nullptr);
}

TEST(Registry, EvaluationReportsRatios) {
  std::vector<Bytes> samples;
  for (int i = 0; i < 4; ++i) samples.push_back(make_input(4096, 0.8, 10 + i));
  const auto evals = evaluate_all(samples);
  ASSERT_EQ(evals.size(), all_codecs().size());
  for (const auto& ev : evals) {
    EXPECT_TRUE(ev.roundtrip_ok) << ev.name;
    EXPECT_GT(ev.ratio, 0.0);
    if (ev.name == "store") EXPECT_NEAR(ev.ratio, 1.0, 1e-9);
  }
}

// ---- The paper's core claim: SFA states compress extremely well -------------------

TEST(SfaStateCompression, PrositeStatesCompressWell) {
  // §III-C: deflate-class codecs reach 17x-30x on PROSITE SFA states.  Our
  // small test pattern won't hit 17x, but must compress far better than the
  // ~2-5x of general text.
  const Dfa dfa = compile_prosite("C-x-[DN]-x(4)-[FY]-x-C-x-C.");
  const Sfa sfa = build_sfa_transposed(dfa);
  std::vector<Bytes> samples;
  std::vector<std::uint32_t> mapping;
  // 10 states sampled at equidistant positions, per the paper's §III-C.
  for (int i = 0; i < 10; ++i) {
    const Sfa::StateId s = static_cast<Sfa::StateId>(
        static_cast<std::uint64_t>(i) * (sfa.num_states() - 1) / 9);
    sfa.mapping(s, mapping);
    Bytes raw(mapping.size() * 2);
    for (std::size_t q = 0; q < mapping.size(); ++q) {
      raw[q * 2] = static_cast<std::uint8_t>(mapping[q]);
      raw[q * 2 + 1] = static_cast<std::uint8_t>(mapping[q] >> 8);
    }
    samples.push_back(std::move(raw));
  }
  const auto ev = evaluate_codec(*find_codec("deflate-like"), samples);
  EXPECT_TRUE(ev.roundtrip_ok);
  EXPECT_GT(ev.ratio, 3.0);
}

TEST(SfaStateCompression, RBenchmarkStatesCompressBetter) {
  // r-pattern states are dominated by the sink -> far higher ratios (the
  // paper reports 95x for r500).
  const Dfa dfa = make_r_benchmark_dfa(200, 500);
  const Sfa sfa = build_sfa_transposed(dfa);
  std::vector<Bytes> samples;
  std::vector<std::uint32_t> mapping;
  for (Sfa::StateId s = sfa.num_states() / 2; s < sfa.num_states() &&
       samples.size() < 10; ++s) {
    sfa.mapping(s, mapping);
    Bytes raw(mapping.size() * 2);
    for (std::size_t q = 0; q < mapping.size(); ++q) {
      raw[q * 2] = static_cast<std::uint8_t>(mapping[q]);
      raw[q * 2 + 1] = static_cast<std::uint8_t>(mapping[q] >> 8);
    }
    samples.push_back(std::move(raw));
  }
  const auto deflate_ev = evaluate_codec(*find_codec("deflate-like"), samples);
  // Word-granular RLE sees the 16-bit sink runs (the paper's "RLE will be
  // able to produce similar results" remark); byte-RLE cannot, because u16
  // cells alternate low/high bytes.
  const auto rle16_ev = evaluate_codec(*find_codec("rle16"), samples);
  EXPECT_GT(deflate_ev.ratio, 8.0);
  EXPECT_GT(rle16_ev.ratio, 8.0);
}

}  // namespace
}  // namespace sfa
