// TransitionTable layout tests (the δ-table policy seam, core/table/).
//
// Every layout must encode the SAME function: conversions are checked
// cell-for-cell against the dense image, converted SFAs must stay
// isomorphic to their dense originals, and the d2fa/dedup layouts must
// actually shrink an r500-class explosive SFA (the ≥3× criterion the seam
// exists for).  Malformed serialized parts must be rejected, and the
// fault-injection hook must only work where it is meaningful.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "harness/corpus.hpp"
#include "harness/oracle.hpp"
#include "sfa/core/build.hpp"
#include "sfa/core/sfa.hpp"
#include "sfa/core/table/dense_builder.hpp"
#include "sfa/core/table/transition_table.hpp"
#include "sfa/prosite/patterns.hpp"

namespace sfa {
namespace {

using table::TableLayout;
using table::TableStats;
using table::TransitionTable;

// A small table with deliberate row duplication: 6 states x 4 symbols,
// states {0,2,5} share one row and {1,4} share another.
TransitionTable small_dup_table() {
  const std::vector<std::uint32_t> rows[3] = {
      {1, 2, 3, 0},  // row A
      {4, 4, 5, 0},  // row B
      {0, 1, 2, 3},  // row C
  };
  std::vector<std::uint32_t> cells;
  for (const int r : {0, 1, 2, 0, 1, 0})
    cells.insert(cells.end(), rows[r].begin(), rows[r].end());
  return TransitionTable::dense(std::move(cells), 6, 4);
}

void expect_same_function(const TransitionTable& a, const TransitionTable& b) {
  ASSERT_EQ(a.num_states(), b.num_states());
  ASSERT_EQ(a.num_symbols(), b.num_symbols());
  for (std::uint32_t s = 0; s < a.num_states(); ++s)
    for (unsigned sym = 0; sym < a.num_symbols(); ++sym)
      ASSERT_EQ(a.next(s, sym), b.next(s, sym))
          << "delta(" << s << ", " << sym << ") diverged under layout "
          << table::layout_name(b.layout());
}

TEST(TransitionTable, LayoutNamesRoundTrip) {
  for (const TableLayout l :
       {TableLayout::kDense, TableLayout::kRowDedup, TableLayout::kD2fa}) {
    TableLayout parsed;
    ASSERT_TRUE(table::parse_layout(table::layout_name(l), parsed));
    EXPECT_EQ(parsed, l);
  }
  TableLayout out;
  EXPECT_FALSE(table::parse_layout("sparse", out));
  EXPECT_TRUE(table::parse_layout("row-dedup", out));  // documented alias
  EXPECT_EQ(out, TableLayout::kRowDedup);
}

TEST(TransitionTable, DedupSharesDuplicateRows) {
  const TransitionTable dense = small_dup_table();
  EXPECT_EQ(dense.rows_unique(), 6u);  // dense shares nothing

  const TransitionTable dedup = dense.to_row_dedup();
  EXPECT_EQ(dedup.layout(), TableLayout::kRowDedup);
  EXPECT_EQ(dedup.rows_unique(), 3u);
  EXPECT_LT(dedup.resident_bytes(), dense.resident_bytes());
  expect_same_function(dense, dedup);
  EXPECT_EQ(dedup.materialize_dense(), dense.cells());
}

TEST(TransitionTable, D2faEncodesSameFunction) {
  const TransitionTable dense = small_dup_table();
  const TransitionTable d2fa = dense.to_d2fa();
  EXPECT_EQ(d2fa.layout(), TableLayout::kD2fa);
  EXPECT_LE(d2fa.max_chase_depth(), TransitionTable::kDefaultMaxChase);
  expect_same_function(dense, d2fa);
  EXPECT_EQ(d2fa.materialize_dense(), dense.cells());

  // The chase-depth histogram partitions the states.
  const TableStats stats = d2fa.stats();
  const std::uint64_t total = std::accumulate(
      stats.chase_depth_hist.begin(), stats.chase_depth_hist.end(),
      std::uint64_t{0});
  EXPECT_EQ(total, d2fa.num_states());
}

TEST(TransitionTable, EveryConversionPathAgrees) {
  // convert() from ANY source layout to ANY target must produce the same
  // function (conversions route through the materialized dense image).
  const TransitionTable dense = small_dup_table();
  const TableLayout layouts[] = {TableLayout::kDense, TableLayout::kRowDedup,
                                 TableLayout::kD2fa};
  for (const TableLayout from : layouts) {
    const TransitionTable src = dense.convert(from);
    for (const TableLayout to : layouts) {
      const TransitionTable dst = src.convert(to);
      EXPECT_EQ(dst.layout(), to);
      expect_same_function(dense, dst);
    }
  }
}

TEST(TransitionTable, DenseBuilderGrowsGeometrically) {
  table::DenseTableBuilder b(4);
  for (std::uint32_t s = 0; s < 100; ++s) {
    b.ensure_rows(s + 1);
    for (unsigned sym = 0; sym < 4; ++sym) b.set(s, sym, (s + sym) % 100);
  }
  // Geometric doubling: O(log states) reallocations, not O(states).
  EXPECT_LE(b.reallocations(), 9u);
  const TransitionTable t = b.finish(100);
  EXPECT_EQ(t.layout(), TableLayout::kDense);
  for (std::uint32_t s = 0; s < 100; ++s)
    for (unsigned sym = 0; sym < 4; ++sym)
      ASSERT_EQ(t.next(s, sym), (s + sym) % 100);
}

TEST(TransitionTable, MalformedPartsAreRejected) {
  // row_of pointing past the unique rows.
  EXPECT_THROW(TransitionTable::row_dedup_from_parts(
                   {0, 1, 7}, std::vector<std::uint32_t>(2 * 4, 0), 3, 4),
               std::runtime_error);
  // Non-monotone exception CSR.
  EXPECT_THROW(TransitionTable::d2fa_from_parts({TransitionTable::kNoDefault,
                                                 0},
                                                {2, 1, 2}, {0, 1}, {0, 0}, 2,
                                                4),
               std::runtime_error);
  // Default-transition cycle (0 -> 1 -> 0).
  EXPECT_THROW(TransitionTable::d2fa_from_parts({1, 0}, {0, 0, 0}, {}, {}, 2,
                                                4),
               std::runtime_error);
}

TEST(TransitionTable, CorruptionHookIsD2faOnly) {
  const TransitionTable dense = small_dup_table();
  TransitionTable dedup = dense.to_row_dedup();
  EXPECT_THROW(dedup.inject_corrupt_default_transition(), std::logic_error);

  TransitionTable d2fa = dense.to_d2fa();
  const std::uint32_t corrupted = d2fa.inject_corrupt_default_transition();
  EXPECT_LT(corrupted, d2fa.num_states());
  // The corrupted chase still terminates (kHardChaseLimit) — deterministic
  // wrong answers, never a hang.
  for (std::uint32_t s = 0; s < d2fa.num_states(); ++s)
    for (unsigned sym = 0; sym < d2fa.num_symbols(); ++sym)
      (void)d2fa.next(s, sym);
}

// --- Through the Sfa seam ----------------------------------------------------

TEST(SfaTableLayout, ConvertedSfaStaysIsomorphic) {
  const Dfa dfa = make_r_benchmark_dfa(48, 500);
  const Sfa dense = build_sfa_transposed(dfa);
  for (const TableLayout layout :
       {TableLayout::kRowDedup, TableLayout::kD2fa}) {
    Sfa converted = dense;
    converted.convert_table_layout(layout);
    EXPECT_EQ(converted.table_layout(), layout);
    const auto mismatch = testing::check_isomorphic(dense, converted);
    EXPECT_FALSE(mismatch.has_value()) << *mismatch;
    // Round-trip back to dense restores the exact cell vector.
    converted.convert_table_layout(TableLayout::kDense);
    EXPECT_EQ(converted.table().cells(), dense.table().cells());
  }
}

TEST(SfaTableLayout, ShrinksExplosiveR500ClassSfa) {
  // The acceptance criterion of the seam: on an r500-class SFA (exact
  // random string, sink-dominated — the paper's explosive family) the
  // compressed layouts must shrink the resident δ-table by ≥ 3× while
  // remaining match-exact (the oracle's layout columns enforce exactness;
  // isomorphism is re-checked here).
  const Dfa dfa = make_r_benchmark_dfa(120, 500);
  const Sfa dense = build_sfa_transposed(dfa);
  const std::uint64_t dense_bytes = dense.table_bytes();
  ASSERT_GT(dense_bytes, 0u);

  Sfa dedup = dense;
  dedup.convert_table_layout(TableLayout::kRowDedup);
  Sfa d2fa = dense;
  d2fa.convert_table_layout(TableLayout::kD2fa);

  const std::uint64_t best =
      std::min(dedup.table_bytes(), d2fa.table_bytes());
  EXPECT_LE(best * 3, dense_bytes)
      << "dense " << dense_bytes << " B, dedup " << dedup.table_bytes()
      << " B, d2fa " << d2fa.table_bytes() << " B";

  EXPECT_FALSE(testing::check_isomorphic(dense, dedup).has_value());
  EXPECT_FALSE(testing::check_isomorphic(dense, d2fa).has_value());
}

TEST(SfaTableLayout, StatsReflectLayout) {
  const Dfa dfa = make_r_benchmark_dfa(32, 500);
  Sfa sfa = build_sfa_transposed(dfa);
  const TableStats dense_stats = sfa.table().stats();
  EXPECT_EQ(dense_stats.layout, TableLayout::kDense);
  EXPECT_EQ(dense_stats.rows_unique, sfa.num_states());
  EXPECT_EQ(dense_stats.max_chase_depth, 0u);

  sfa.convert_table_layout(TableLayout::kD2fa);
  const TableStats d2fa_stats = sfa.table().stats();
  EXPECT_EQ(d2fa_stats.layout, TableLayout::kD2fa);
  EXPECT_LE(d2fa_stats.max_chase_depth, TransitionTable::kDefaultMaxChase);
  EXPECT_EQ(d2fa_stats.resident_bytes, sfa.table_bytes());
}

}  // namespace
}  // namespace sfa
