// Support-module tests: RNG determinism/distribution, timers, formatting,
// CPU feature probing.
#include <gtest/gtest.h>

#include <thread>

#include "sfa/support/aligned.hpp"
#include "sfa/support/cpu.hpp"
#include "sfa/support/format.hpp"
#include "sfa/support/rng.hpp"
#include "sfa/support/timer.hpp"

namespace sfa {
namespace {

TEST(Rng, SplitMixKnownSequenceIsDeterministic) {
  SplitMix64 a(12345), b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, XoshiroDeterministicPerSeed) {
  Xoshiro256 a(7), b(7), c(8);
  bool diverged = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next();
    EXPECT_EQ(va, b.next());
    if (va != c.next()) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(Rng, BelowStaysInRange) {
  Xoshiro256 rng(3);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 20ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(bound), bound);
  }
  EXPECT_EQ(rng.below(0), 0u);
  EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Xoshiro256 rng(11);
  constexpr int kBuckets = 10, kDraws = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(kBuckets)];
  for (int b = 0; b < kBuckets; ++b) {
    EXPECT_GT(counts[b], kDraws / kBuckets * 0.9) << b;
    EXPECT_LT(counts[b], kDraws / kBuckets * 1.1) << b;
  }
}

TEST(Rng, UnitInHalfOpenInterval) {
  Xoshiro256 rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Timer, MeasuresSleep) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double s = t.seconds();
  EXPECT_GE(s, 0.015);
  EXPECT_LT(s, 2.0);
}

TEST(Timer, TscMonotoneAndCalibrated) {
  if (read_tsc() == 0) GTEST_SKIP() << "no TSC";
  const auto a = read_tsc();
  const auto b = read_tsc();
  EXPECT_GE(b, a);
  EXPECT_GT(tsc_hz(), 1e8);   // >100 MHz
  EXPECT_LT(tsc_hz(), 1e11);  // <100 GHz
}

TEST(Cpu, ReportsAtLeastOneThread) {
  EXPECT_GE(hardware_threads(), 1u);
  EXPECT_GE(cache_line_size(), 16u);
  EXPECT_FALSE(platform_summary().empty());
}

TEST(Format, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(1234567), "1,234,567");
  EXPECT_EQ(with_commas(40956096ull), "40,956,096");
}

TEST(Format, HumanBytes) {
  EXPECT_EQ(human_bytes(0), "0 B");
  EXPECT_EQ(human_bytes(1023), "1023 B");
  EXPECT_EQ(human_bytes(1024), "1.00 KiB");
  EXPECT_EQ(human_bytes(1536), "1.50 KiB");
  EXPECT_EQ(human_bytes(1ull << 30), "1.00 GiB");
}

TEST(Format, Fixed) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(1.0, 0), "1");
}

TEST(Format, RenderTableAlignsColumns) {
  const std::string out = render_table({{"name", "value"},
                                        {"alpha", "1.5"},
                                        {"b", "123,456"}});
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  // Numeric-looking cells right-align: "1.5" is padded on the left.
  EXPECT_NE(out.find("    1.5"), std::string::npos);
}

TEST(Format, MedianOf) {
  EXPECT_EQ(median_of({}), 0.0);
  EXPECT_EQ(median_of({3.0}), 3.0);
  EXPECT_EQ(median_of({1.0, 2.0, 3.0}), 2.0);
  EXPECT_EQ(median_of({1.0, 2.0, 3.0, 4.0}), 2.5);
  EXPECT_EQ(median_of({4.0, 1.0, 3.0, 2.0}), 2.5);  // unsorted input
}

TEST(Aligned, AllocatorOveraligns) {
  std::vector<std::uint16_t, AlignedAllocator<std::uint16_t>> v(100);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % kSimdAlign, 0u);
}

TEST(Aligned, CachePaddedSeparation) {
  CachePadded<int> a[2];
  const auto pa = reinterpret_cast<std::uintptr_t>(&a[0]);
  const auto pb = reinterpret_cast<std::uintptr_t>(&a[1]);
  EXPECT_GE(pb - pa, 64u);
}

}  // namespace
}  // namespace sfa
