// Sequential builder tests: the paper's running example (Figs. 1-2), the
// equivalence of all builder variants, and cross-checks against the DFA.
#include <gtest/gtest.h>

#include "sfa/automata/ops.hpp"
#include "sfa/core/build.hpp"
#include "sfa/core/equivalence.hpp"
#include "sfa/core/match.hpp"
#include "sfa/prosite/patterns.hpp"
#include "sfa/prosite/prosite_parser.hpp"
#include "sfa/support/rng.hpp"

namespace sfa {
namespace {

/// The paper's Fig. 1 example: matches RG anywhere over the amino alphabet.
Dfa fig1_dfa() { return compile_pattern("RG", Alphabet::amino()); }

TEST(Fig1Example, DfaShape) {
  const Dfa dfa = fig1_dfa();
  EXPECT_EQ(dfa.size(), 3u);  // states 0, 1 (seen R), 2 (accepting, absorbing)
  EXPECT_EQ(dfa.num_symbols(), 20u);
  EXPECT_EQ(dfa.accepting_count(), 1u);
}

TEST(Fig1Example, SfaHasSixStates) {
  // Fig. 2 of the paper: the SFA of the RG automaton has 6 states (state
  // mappings f_0..f_5).
  const Dfa dfa = fig1_dfa();
  const Sfa sfa = build_sfa_baseline(dfa);
  EXPECT_EQ(sfa.num_states(), 6u);
}

TEST(Fig1Example, StartStateIsIdentity) {
  const Dfa dfa = fig1_dfa();
  const Sfa sfa = build_sfa_baseline(dfa);
  std::vector<std::uint32_t> mapping;
  sfa.mapping(sfa.start(), mapping);
  for (std::uint32_t q = 0; q < dfa.size(); ++q) EXPECT_EQ(mapping[q], q);
}

TEST(Fig1Example, AllVariantsVerify) {
  const Dfa dfa = fig1_dfa();
  for (const BuildMethod m : {BuildMethod::kBaseline, BuildMethod::kHashed,
                              BuildMethod::kTransposed, BuildMethod::kParallel}) {
    SCOPED_TRACE(build_method_name(m));
    const Sfa sfa = build_sfa(dfa, m);
    const VerifyReport report = verify_sfa(sfa, dfa);
    EXPECT_TRUE(report.ok) << report.first_failure;
  }
}

TEST(BuilderEquivalence, VariantsProduceSameStateCount) {
  // Different dedup structures must discover exactly the same state set.
  for (const char* pattern : {"N-{P}-[ST]-{P}.", "R-G-D.", "[ST]-x(2)-[DE].",
                              "C-x-[DN]-x(4)-[FY]-x-C-x-C."}) {
    SCOPED_TRACE(pattern);
    const Dfa dfa = compile_prosite(pattern);
    const Sfa a = build_sfa_baseline(dfa);
    const Sfa b = build_sfa_hashed(dfa);
    const Sfa c = build_sfa_transposed(dfa);
    EXPECT_EQ(a.num_states(), b.num_states());
    EXPECT_EQ(a.num_states(), c.num_states());
  }
}

TEST(BuilderEquivalence, HashedMatchesBaselineBehaviour) {
  const Dfa dfa = compile_prosite("[AG]-x(4)-G-K-[ST].");
  const Sfa base = build_sfa_baseline(dfa);
  const Sfa hashed = build_sfa_hashed(dfa);
  // Behavioural equality: same acceptance on random strings.
  Xoshiro256 rng(7);
  std::vector<Symbol> input;
  for (int i = 0; i < 100; ++i) {
    input.resize(rng.below(80));
    for (auto& s : input) s = static_cast<Symbol>(rng.below(20));
    const Sfa::StateId sa = base.run(base.start(), input.data(), input.size());
    const Sfa::StateId sb =
        hashed.run(hashed.start(), input.data(), input.size());
    EXPECT_EQ(base.accepting(sa), hashed.accepting(sb));
  }
}

TEST(BuilderVariants, TransposedScalarVsSimdIdentical) {
  const Dfa dfa = compile_prosite("L-x(2)-L-x(2)-L.");
  BuildOptions scalar;
  scalar.transpose = TransposeMethod::kScalar;
  BuildOptions simd;
  simd.transpose = TransposeMethod::kSimd8;
  const Sfa a = build_sfa_transposed(dfa, scalar);
  const Sfa b = build_sfa_transposed(dfa, simd);
  ASSERT_EQ(a.num_states(), b.num_states());
  EXPECT_TRUE(verify_sfa(b, dfa).ok);
}

TEST(BuilderVariants, Transposed16x16Verifies) {
  const Dfa dfa = compile_prosite("C-x(2,4)-C-x(3)-H.");
  BuildOptions opt;
  opt.transpose = TransposeMethod::kSimd16x16;
  const Sfa sfa = build_sfa_transposed(dfa, opt);
  EXPECT_TRUE(verify_sfa(sfa, dfa).ok);
}

TEST(BuildStatsTest, ReportsStatesAndBytes) {
  const Dfa dfa = fig1_dfa();
  BuildStats stats;
  const Sfa sfa = build_sfa_hashed(dfa, {}, &stats);
  EXPECT_EQ(stats.sfa_states, sfa.num_states());
  EXPECT_EQ(stats.dfa_states, dfa.size());
  EXPECT_EQ(stats.mapping_bytes_uncompressed,
            static_cast<std::uint64_t>(sfa.num_states()) * dfa.size() * 2);
  EXPECT_GT(stats.seconds, 0.0);
}

TEST(BuildStatsTest, DeltaGrowsGeometrically) {
  // Regression: build_sfa_hashed used to delta.resize() once per discovered
  // state, reallocating (and copying) the table O(states) times.  The
  // substrate driver grows the capacity geometrically, so the reallocation
  // count must be logarithmic in the state count, never linear.
  const Dfa dfa = compile_prosite("C-x-[DE]-x(2)-C.");
  for (const BuildMethod m : {BuildMethod::kBaseline, BuildMethod::kHashed,
                              BuildMethod::kTransposed,
                              BuildMethod::kProbabilistic}) {
    SCOPED_TRACE(build_method_name(m));
    BuildStats stats;
    const Sfa sfa = build_sfa(dfa, m, {}, &stats);
    ASSERT_GT(sfa.num_states(), 100u) << "test DFA too small to be probative";
    EXPECT_GT(stats.delta_reallocations, 0u);
    // Doubling from one row can take at most ceil(log2(states)) + 1 steps.
    std::uint64_t bound = 2;
    while ((1u << bound) < sfa.num_states()) ++bound;
    EXPECT_LE(stats.delta_reallocations, bound + 2)
        << "delta table reallocated " << stats.delta_reallocations
        << " times for " << sfa.num_states() << " states";
  }
}

TEST(BuildOptionsTest, MaxStatesGuardThrows) {
  const Dfa dfa = compile_prosite("C-x(2,4)-C-x(3)-H.");
  BuildOptions opt;
  opt.max_states = 10;  // absurdly small
  EXPECT_THROW(build_sfa_hashed(dfa, opt), std::runtime_error);
  EXPECT_THROW(build_sfa_baseline(dfa, opt), std::runtime_error);
}

TEST(BuildOptionsTest, KeepMappingsFalseSavesMemory) {
  const Dfa dfa = fig1_dfa();
  BuildOptions opt;
  opt.keep_mappings = false;
  const Sfa sfa = build_sfa_transposed(dfa, opt);
  EXPECT_FALSE(sfa.has_mappings());
  EXPECT_EQ(sfa.mapping_store_bytes(), 0u);
  // Structure still verifiable behaviourally.
  EXPECT_TRUE(verify_sfa(sfa, dfa).ok);
}

TEST(RBenchmark, R500StyleDfaBuildsQuickly) {
  // The r-benchmark family (exact random string, no catenation): SFA should
  // stay small because almost every cell collapses into the sink.
  const Dfa dfa = make_r_benchmark_dfa(100, 500);
  EXPECT_EQ(dfa.size(), 102u);
  const Sfa sfa = build_sfa_transposed(dfa);
  EXPECT_TRUE(verify_sfa(sfa, dfa, {.random_inputs = 50}).ok);
  // Identity + per-prefix states + all-sink-ish states; far below explosion.
  EXPECT_LT(sfa.num_states(), 5000u);
}

TEST(RBenchmark, SinkDominatesStates) {
  const Dfa dfa = make_r_benchmark_dfa(64, 500);
  const Dfa::StateId sink = dfa.find_sink();
  ASSERT_LT(sink, dfa.size());
  const Sfa sfa = build_sfa_transposed(dfa);
  // Count sink-valued cells across a sample of mappings: should dominate.
  std::vector<std::uint32_t> mapping;
  std::uint64_t sink_cells = 0, total_cells = 0;
  for (Sfa::StateId s = 0; s < sfa.num_states(); ++s) {
    sfa.mapping(s, mapping);
    for (auto v : mapping) {
      sink_cells += (v == sink);
      ++total_cells;
    }
  }
  EXPECT_GT(sink_cells * 2, total_cells);  // > 50% sink
}

// Parameterized sweep: every embedded PROSITE sample must build and verify
// with every sequential method.
class ProsriteBuildSweep
    : public ::testing::TestWithParam<std::tuple<int, BuildMethod>> {};

TEST_P(ProsriteBuildSweep, BuildsAndVerifies) {
  const auto [index, method] = GetParam();
  const NamedPattern& p = prosite_samples()[static_cast<std::size_t>(index)];
  SCOPED_TRACE(p.id + " " + p.pattern);
  BuildOptions opt;
  opt.max_states = 1u << 18;
  Dfa dfa = compile_prosite(p.pattern);
  if (dfa.size() > 600) GTEST_SKIP() << "too large for the sweep budget";
  Sfa sfa;
  try {
    sfa = build_sfa(dfa, method, opt);
  } catch (const std::runtime_error&) {
    GTEST_SKIP() << "state explosion beyond sweep budget";
  }
  const VerifyReport report =
      verify_sfa(sfa, dfa, {.random_inputs = 30, .structural_samples = 50});
  EXPECT_TRUE(report.ok) << report.first_failure;
}

INSTANTIATE_TEST_SUITE_P(
    SmallSamples, ProsriteBuildSweep,
    ::testing::Combine(::testing::Range(0, 10),
                       ::testing::Values(BuildMethod::kBaseline,
                                         BuildMethod::kHashed,
                                         BuildMethod::kTransposed)),
    [](const auto& info) {
      return "p" + std::to_string(std::get<0>(info.param)) + "_" +
             build_method_name(std::get<1>(info.param));
    });

}  // namespace
}  // namespace sfa
