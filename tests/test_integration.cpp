// Cross-module integration tests: the full pattern -> DFA -> SFA -> match
// pipeline under every builder, including compression, Grail round-trips,
// and end-to-end workload scenarios mirroring the examples.
#include <gtest/gtest.h>

#include "sfa/automata/ops.hpp"
#include "sfa/core/api.hpp"
#include "sfa/core/build.hpp"
#include "sfa/core/equivalence.hpp"
#include "sfa/core/match.hpp"
#include "sfa/prosite/patterns.hpp"
#include "sfa/prosite/prosite_parser.hpp"
#include "sfa/support/rng.hpp"

namespace sfa {
namespace {

TEST(EndToEnd, ProteinScanScenario) {
  // The protein_scan example in miniature: several motifs over one sequence.
  Xoshiro256 rng(2025);
  std::string sequence;
  for (int i = 0; i < 50000; ++i)
    sequence.push_back("ACDEFGHIKLMNPQRSTVWY"[rng.below(20)]);
  sequence.replace(12000, 3, "RGD");
  sequence.replace(30000, 4, "NGSG");

  const Engine rgd = Engine::from_prosite("R-G-D.");
  const Engine glyc = Engine::from_prosite("N-{P}-[ST]-{P}.");
  EXPECT_TRUE(rgd.contains(sequence, 4));
  EXPECT_TRUE(glyc.contains(sequence, 4));
}

TEST(EndToEnd, SignatureScanScenario) {
  // The signature_ids example in miniature: ASCII alphabet, regex signature.
  const Alphabet& ascii = Alphabet::ascii_printable();
  const Engine sig = Engine::from_regex("GET /(admin|secret)/",
                                        ascii, BuildMethod::kTransposed);
  EXPECT_TRUE(sig.contains("POST /x HTTP GET /admin/panel HTTP/1.1", 2));
  EXPECT_FALSE(sig.contains("GET /public/index.html", 2));
}

TEST(EndToEnd, GrailRoundtripThenBuild) {
  // Serialize a compiled DFA to Grail+ text (the paper's interchange format),
  // re-read it, and confirm the SFA built from the re-read DFA verifies.
  const Dfa original = compile_prosite("[AG]-x(4)-G-K-[ST].");
  const Dfa reread =
      Dfa::from_grail(original.to_grail(Alphabet::amino()), Alphabet::amino());
  ASSERT_TRUE(dfa_equivalent(original, reread));
  const Sfa sfa = build_sfa_parallel(reread, {.num_threads = 2});
  EXPECT_TRUE(verify_sfa(sfa, reread, {.random_inputs = 30}).ok);
}

TEST(EndToEnd, AllBuildersAllMethodsAgreeOnMatches) {
  const Dfa dfa = compile_prosite("[ST]-x(2)-[DE].");
  std::vector<Sfa> sfas;
  sfas.push_back(build_sfa_baseline(dfa));
  sfas.push_back(build_sfa_hashed(dfa));
  sfas.push_back(build_sfa_transposed(dfa));
  sfas.push_back(build_sfa_parallel(dfa, {.num_threads = 4}));
  BuildOptions comp;
  comp.num_threads = 2;
  comp.memory_threshold_bytes = 1;
  sfas.push_back(build_sfa_parallel(dfa, comp));

  Xoshiro256 rng(31);
  std::vector<Symbol> text(3000);
  for (int trial = 0; trial < 20; ++trial) {
    for (auto& s : text) s = static_cast<Symbol>(rng.below(20));
    const bool expected = match_sequential(dfa, text).accepted;
    for (std::size_t i = 0; i < sfas.size(); ++i) {
      EXPECT_EQ(match_sfa_parallel(sfas[i], text, 3).accepted, expected)
          << "builder " << i << " trial " << trial;
    }
  }
}

TEST(EndToEnd, SyntheticPatternPipeline) {
  // Synthetic generator -> parse -> compile -> build -> verify, across seeds.
  unsigned built = 0;
  for (std::uint64_t seed = 100; seed < 130; ++seed) {
    SyntheticPatternOptions gen;
    gen.max_elements = 6;
    gen.max_repeat = 2;
    const std::string pattern = synthetic_prosite_pattern(seed, gen);
    SCOPED_TRACE(pattern);
    const Dfa dfa = compile_prosite(pattern);
    if (dfa.size() > 200) continue;  // keep the suite fast
    BuildOptions opt;
    opt.num_threads = 2;
    opt.max_states = 200000;
    Sfa sfa;
    try {
      sfa = build_sfa_parallel(dfa, opt);
    } catch (const std::runtime_error&) {
      continue;  // state explosion: legitimate outcome, skip
    }
    EXPECT_TRUE(
        verify_sfa(sfa, dfa, {.random_inputs = 15, .structural_samples = 30})
            .ok);
    ++built;
  }
  EXPECT_GE(built, 5u) << "generator produced too few tractable patterns";
}

TEST(EndToEnd, DnaAlphabetFullPipeline) {
  const Engine engine = Engine::from_regex("(AT){3,}", Alphabet::dna(),
                                           BuildMethod::kParallel,
                                           {.num_threads = 2});
  EXPECT_TRUE(engine.contains("GGGATATATGGG"));
  EXPECT_FALSE(engine.contains("GGGATATGGG"));
  EXPECT_TRUE(verify_sfa(engine.sfa(), engine.dfa(), {.random_inputs = 40}).ok);
}

TEST(EndToEnd, MappingCompositionAssociativity) {
  // Property: running the SFA over u+v equals composing the mappings of u
  // then v — the algebraic fact parallel matching rests on.
  const Dfa dfa = compile_prosite("N-{P}-[ST]-{P}.");
  const Sfa sfa = build_sfa_transposed(dfa);
  Xoshiro256 rng(41);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Symbol> u(rng.below(100)), v(rng.below(100));
    for (auto& s : u) s = static_cast<Symbol>(rng.below(20));
    for (auto& s : v) s = static_cast<Symbol>(rng.below(20));

    std::vector<Symbol> uv = u;
    uv.insert(uv.end(), v.begin(), v.end());

    const Sfa::StateId su = sfa.run(sfa.start(), u.data(), u.size());
    const Sfa::StateId sv = sfa.run(sfa.start(), v.data(), v.size());
    const Sfa::StateId suv = sfa.run(sfa.start(), uv.data(), uv.size());

    // Compose su then sv at every DFA state; must equal suv's mapping.
    std::vector<std::uint32_t> mu, mv, muv;
    sfa.mapping(su, mu);
    sfa.mapping(sv, mv);
    sfa.mapping(suv, muv);
    for (std::uint32_t q = 0; q < dfa.size(); ++q)
      ASSERT_EQ(mv[mu[q]], muv[q]) << "trial " << trial << " q " << q;
  }
}

TEST(OracleIntegrity, VerifierCatchesCorruptTables) {
  // The verifier underwrites every builder test, so prove it actually
  // detects damage: corrupt a copy of a correct SFA and expect failure.
  const Dfa dfa = compile_prosite("N-{P}-[ST]-{P}.");
  const Sfa good = build_sfa_transposed(dfa);
  ASSERT_TRUE(verify_sfa(good, dfa).ok);

  // Helper: a structurally identical twin with mutable tables + mappings.
  const auto clone_parts = [&](std::vector<Sfa::StateId>& delta,
                               std::vector<std::uint8_t>& accepting,
                               std::vector<std::uint8_t>& raw) {
    std::vector<std::uint32_t> mapping;
    for (Sfa::StateId s = 0; s < good.num_states(); ++s) {
      accepting.push_back(good.accepting(s));
      for (unsigned sym = 0; sym < good.num_symbols(); ++sym)
        delta.push_back(good.transition(s, static_cast<Symbol>(sym)));
      good.mapping(s, mapping);
      for (auto v : mapping) {
        raw.push_back(static_cast<std::uint8_t>(v));
        raw.push_back(static_cast<std::uint8_t>(v >> 8));
      }
    }
  };
  const auto make_sfa = [&](std::vector<Sfa::StateId> delta,
                            std::vector<std::uint8_t> accepting,
                            std::vector<std::uint8_t> raw) {
    Sfa bad;
    std::vector<std::uint8_t> acc(dfa.size());
    for (Dfa::StateId q = 0; q < dfa.size(); ++q) acc[q] = dfa.accepting(q);
    bad.init(dfa.size(), dfa.num_symbols(), 2, dfa.start(), std::move(acc));
    bad.set_mappings_raw(std::move(raw));
    bad.set_table(std::move(delta), std::move(accepting));
    return bad;
  };

  {  // One wrong transition: the structural simulation check must see it.
    std::vector<Sfa::StateId> delta;
    std::vector<std::uint8_t> accepting, raw;
    clone_parts(delta, accepting, raw);
    delta[5] = (delta[5] + 1) % good.num_states();
    const Sfa bad = make_sfa(std::move(delta), std::move(accepting), std::move(raw));
    EXPECT_FALSE(verify_sfa(bad, dfa).ok);
  }
  {  // One flipped acceptance bit.
    std::vector<Sfa::StateId> delta;
    std::vector<std::uint8_t> accepting, raw;
    clone_parts(delta, accepting, raw);
    accepting[2] ^= 1;
    const Sfa bad = make_sfa(std::move(delta), std::move(accepting), std::move(raw));
    EXPECT_FALSE(verify_sfa(bad, dfa).ok);
  }
  {  // One corrupted mapping cell.
    std::vector<Sfa::StateId> delta;
    std::vector<std::uint8_t> accepting, raw;
    clone_parts(delta, accepting, raw);
    raw[7 * dfa.size() * 2] ^= 1;  // state 7, cell 0, low byte
    const Sfa bad = make_sfa(std::move(delta), std::move(accepting), std::move(raw));
    EXPECT_FALSE(verify_sfa(bad, dfa).ok);
  }
}

TEST(EndToEnd, StressManyEnginesSequentially) {
  // Allocator/arena hygiene: building many engines must not interfere.
  for (int i = 0; i < 10; ++i) {
    const Engine e = Engine::from_prosite("R-G-D.", BuildMethod::kParallel,
                                          {.num_threads = 4});
    EXPECT_EQ(e.sfa().num_states(), 12u);
  }
}

}  // namespace
}  // namespace sfa
