// Matching tests: DFA vs SFA agreement, parallel chunked matching with
// mapping composition, parallel match counting, and the Engine facade.
#include <gtest/gtest.h>

#include "sfa/core/api.hpp"
#include "sfa/core/build.hpp"
#include "sfa/core/match.hpp"
#include "sfa/core/scan/engine.hpp"
#include "sfa/core/scan/tasks.hpp"
#include "sfa/prosite/patterns.hpp"
#include "sfa/prosite/prosite_parser.hpp"
#include "sfa/support/rng.hpp"

namespace sfa {
namespace {

std::vector<Symbol> random_protein(std::size_t len, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Symbol> v(len);
  for (auto& s : v) s = static_cast<Symbol>(rng.below(20));
  return v;
}

/// Plant `motif` into `text` at `pos`.
void plant(std::vector<Symbol>& text, const std::vector<Symbol>& motif,
           std::size_t pos) {
  std::copy(motif.begin(), motif.end(), text.begin() + static_cast<std::ptrdiff_t>(pos));
}

TEST(SequentialMatch, AgreesWithPlainScan) {
  const Dfa dfa = compile_prosite("R-G-D.");
  const Sfa sfa = build_sfa_transposed(dfa);
  const auto motif = Alphabet::amino().encode("RGD");
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    auto text = random_protein(500, seed);
    const bool dfa_says = match_sequential(dfa, text).accepted;
    const bool sfa_says = match_sfa_sequential(sfa, text).accepted;
    EXPECT_EQ(dfa_says, sfa_says) << seed;
  }
}

TEST(SequentialMatch, PlantedMotifFound) {
  const Dfa dfa = compile_prosite("R-G-D.");
  const Sfa sfa = build_sfa_transposed(dfa);
  auto text = random_protein(1000, 1);
  // Scrub any accidental matches by checking first; if present, still fine —
  // we assert on the planted version only.
  plant(text, Alphabet::amino().encode("RGD"), 700);
  EXPECT_TRUE(match_sequential(dfa, text).accepted);
  EXPECT_TRUE(match_sfa_sequential(sfa, text).accepted);
}

class ParallelMatchSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(ParallelMatchSweep, AgreesWithSequentialOnRandomTexts) {
  const unsigned threads = GetParam();
  const Dfa dfa = compile_prosite("N-{P}-[ST]-{P}.");
  const Sfa sfa = build_sfa_transposed(dfa);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto text = random_protein(4096 + seed * 17, 100 + seed);
    const MatchResult seq = match_sequential(dfa, text);
    const MatchResult par = match_sfa_parallel(sfa, text, threads);
    EXPECT_EQ(par.accepted, seq.accepted) << seed;
    EXPECT_EQ(par.final_dfa_state, seq.final_dfa_state) << seed;
  }
}

TEST_P(ParallelMatchSweep, MatchAtChunkBoundary) {
  const unsigned threads = GetParam();
  const Dfa dfa = compile_prosite("R-G-D.");
  const Sfa sfa = build_sfa_transposed(dfa);
  const auto motif = Alphabet::amino().encode("RGD");
  const std::size_t len = 1 << 12;
  // Place the motif straddling every chunk boundary.
  for (unsigned c = 1; c < threads; ++c) {
    auto text = random_protein(len, 55);
    const std::size_t boundary = len / threads * c;
    plant(text, motif, boundary - 1);  // straddles the cut
    const MatchResult par = match_sfa_parallel(sfa, text, threads);
    const MatchResult seq = match_sequential(dfa, text);
    EXPECT_EQ(par.accepted, seq.accepted) << "boundary " << boundary;
    EXPECT_TRUE(par.accepted);
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelMatchSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 7u, 8u),
                         [](const auto& info) {
                           return "t" + std::to_string(info.param);
                         });

TEST(ParallelMatch, ShortInputFallsBackToSequential) {
  const Dfa dfa = compile_prosite("R-G-D.");
  const Sfa sfa = build_sfa_transposed(dfa);
  const auto text = Alphabet::amino().encode("RGD");
  EXPECT_TRUE(match_sfa_parallel(sfa, text, 8).accepted);
}

TEST(ParallelMatch, EmptyInput) {
  const Dfa dfa = compile_prosite("R-G-D.");
  const Sfa sfa = build_sfa_transposed(dfa);
  const std::vector<Symbol> empty;
  EXPECT_FALSE(match_sfa_parallel(sfa, empty, 4).accepted);
  EXPECT_FALSE(match_sfa_sequential(sfa, empty).accepted);
}

TEST(ParallelMatch, RequiresMappings) {
  const Dfa dfa = compile_prosite("R-G-D.");
  BuildOptions opt;
  opt.keep_mappings = false;
  const Sfa sfa = build_sfa_transposed(dfa, opt);
  const auto text = random_protein(10000, 3);
  EXPECT_THROW(match_sfa_parallel(sfa, text, 4), std::logic_error);
}

TEST(CountMatches, AgreesWithSequentialCount) {
  const Dfa dfa = compile_prosite("[ST]-x-[RK].");
  const Sfa sfa = build_sfa_transposed(dfa);
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const auto text = random_protein(8000, 200 + seed);
    const std::size_t seq =
        dfa.count_accepting_prefixes(text.data(), text.size());
    for (unsigned threads : {1u, 2u, 4u, 8u})
      EXPECT_EQ(count_matches_parallel(sfa, dfa, text, threads), seq)
          << "seed " << seed << " threads " << threads;
  }
}

TEST(CountMatches, CountsPlantedOccurrences) {
  // With a match-anywhere DFA, acceptance absorbs: count_accepting_prefixes
  // counts positions from the first match on.  Use that as the oracle.
  const Dfa dfa = compile_prosite("R-G-D.");
  const Sfa sfa = build_sfa_transposed(dfa);
  std::vector<Symbol> text(1000, Alphabet::amino().symbol_of('A'));
  plant(text, Alphabet::amino().encode("RGD"), 100);
  const std::size_t expect = 1000 - 102;  // accepting from position 103 on
  EXPECT_EQ(count_matches_parallel(sfa, dfa, text, 4), expect);
}

// ---- find_first_match_parallel ----------------------------------------------------

TEST(FindFirst, AgreesWithSequentialScan) {
  const Dfa dfa = compile_prosite("[ST]-x-[RK].");
  const Sfa sfa = build_sfa_transposed(dfa);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto text = random_protein(5000, 400 + seed);
    // Oracle: first accepting prefix position.
    std::size_t expect = kNoMatch;
    Dfa::StateId q = dfa.start();
    for (std::size_t i = 0; i < text.size(); ++i) {
      q = dfa.transition(q, text[i]);
      if (dfa.accepting(q)) {
        expect = i + 1;
        break;
      }
    }
    for (unsigned threads : {1u, 2u, 4u, 8u})
      EXPECT_EQ(find_first_match_parallel(sfa, dfa, text, threads), expect)
          << "seed " << seed << " threads " << threads;
  }
}

TEST(FindFirst, NoMatchReturnsSentinel) {
  const Dfa dfa = compile_prosite("W-W-W-W-W.");
  const Sfa sfa = build_sfa_transposed(dfa);
  const std::vector<Symbol> text(10000, Alphabet::amino().symbol_of('A'));
  EXPECT_EQ(find_first_match_parallel(sfa, dfa, text, 4), kNoMatch);
}

TEST(FindFirst, PlantedPositionExact) {
  const Dfa dfa = compile_prosite("R-G-D.");
  const Sfa sfa = build_sfa_transposed(dfa);
  std::vector<Symbol> text(8000, Alphabet::amino().symbol_of('A'));
  plant(text, Alphabet::amino().encode("RGD"), 6000);
  EXPECT_EQ(find_first_match_parallel(sfa, dfa, text, 4), 6003u);
}

TEST(FindFirst, NonAbsorbingDfaStillExact) {
  // The r-benchmark DFA accepts only the exact string; acceptance does not
  // absorb, exercising the rescan-every-chunk fallback.
  const Dfa dfa = make_r_benchmark_dfa(6, 3);
  const Sfa sfa = build_sfa_transposed(dfa);
  // Recover the accepted string from the DFA and embed it at the start.
  std::vector<Symbol> str;
  Dfa::StateId q = dfa.start();
  const Dfa::StateId sink = dfa.find_sink();
  while (!dfa.accepting(q)) {
    for (unsigned s = 0; s < dfa.num_symbols(); ++s) {
      if (dfa.transition(q, static_cast<Symbol>(s)) != sink) {
        str.push_back(static_cast<Symbol>(s));
        q = dfa.transition(q, static_cast<Symbol>(s));
        break;
      }
    }
  }
  // Exactly the string: first match at its end; longer input: no match.
  EXPECT_EQ(find_first_match_parallel(sfa, dfa, str, 2), str.size());
  auto longer = str;
  longer.resize(2048, str[0]);
  EXPECT_EQ(find_first_match_parallel(sfa, dfa, longer, 4), str.size());
}

// ---- find_all_matches_parallel -----------------------------------------------------

TEST(FindAll, AgreesWithSequentialPositions) {
  const Dfa dfa = compile_prosite("[ST]-x-[RK].");
  const Sfa sfa = build_sfa_transposed(dfa);
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const auto text = random_protein(4000, 700 + seed);
    const auto expect = find_all_matches_parallel(sfa, dfa, text, 1);
    for (unsigned threads : {2u, 4u, 8u}) {
      const auto got = find_all_matches_parallel(sfa, dfa, text, threads);
      ASSERT_EQ(got, expect) << "seed " << seed << " threads " << threads;
    }
    // Cross-check against the counting API.
    EXPECT_EQ(expect.size(), count_matches_parallel(sfa, dfa, text, 4));
    EXPECT_TRUE(std::is_sorted(expect.begin(), expect.end()));
  }
}

TEST(FindAll, NonAbsorbingExactString) {
  const Dfa dfa = make_r_benchmark_dfa(5, 21);
  const Sfa sfa = build_sfa_transposed(dfa);
  // Recover the string and repeat it: accepting only right at length 5.
  std::vector<Symbol> str;
  Dfa::StateId q = dfa.start();
  const Dfa::StateId sink = dfa.find_sink();
  while (!dfa.accepting(q)) {
    for (unsigned s = 0; s < dfa.num_symbols(); ++s)
      if (dfa.transition(q, static_cast<Symbol>(s)) != sink) {
        str.push_back(static_cast<Symbol>(s));
        q = dfa.transition(q, static_cast<Symbol>(s));
        break;
      }
  }
  auto text = str;
  text.resize(1024, str[0]);
  const auto all = find_all_matches_parallel(sfa, dfa, text, 4);
  EXPECT_EQ(all, (std::vector<std::size_t>{str.size()}));
}

// ---- wrapper parity against the scan substrate -----------------------------
//
// Every legacy entry point is now a thin wrapper over scan::run_* with a
// specific engine; each case replays the wrapper's exact substrate call and
// requires bit-for-bit identical results.

TEST(WrapperParity, MatchSfaParallelIsEagerRunAccept) {
  const Dfa dfa = compile_prosite("N-{P}-[ST]-{P}.");
  const Sfa sfa = build_sfa_transposed(dfa);
  for (const unsigned t : {2u, 4u, 8u}) {
    const auto text = random_protein(8192, 17 + t);
    const MatchResult wrapper = match_sfa_parallel(sfa, text, t);
    scan::EagerEngine engine(sfa);
    const MatchResult direct = scan::run_accept(
        engine, scan::default_executor(), text.data(), text.size(), t);
    EXPECT_EQ(wrapper.accepted, direct.accepted) << t;
    EXPECT_EQ(wrapper.final_dfa_state, direct.final_dfa_state) << t;
  }
}

TEST(WrapperParity, CountMatchesParallelIsEagerRunCount) {
  const Dfa dfa = compile_prosite("[ST]-x-[RK].");
  const Sfa sfa = build_sfa_transposed(dfa);
  for (const unsigned t : {2u, 4u, 8u}) {
    const auto text = random_protein(8192, 29 + t);
    scan::EagerEngine engine(sfa, &dfa);
    EXPECT_EQ(count_matches_parallel(sfa, dfa, text, t),
              scan::run_count(engine, scan::default_executor(), text.data(),
                              text.size(), t))
        << t;
  }
}

TEST(WrapperParity, FindFirstAndFindAllAreEagerRescanTasks) {
  const Dfa dfa = compile_prosite("R-G-D.");
  const Sfa sfa = build_sfa_transposed(dfa);
  for (const unsigned t : {2u, 4u, 8u}) {
    auto text = random_protein(8192, 43 + t);
    plant(text, Alphabet::amino().encode("RGD"), 6000);
    {
      scan::EagerEngine engine(sfa, &dfa);
      EXPECT_EQ(find_first_match_parallel(sfa, dfa, text, t),
                scan::run_find_first(engine, scan::default_executor(),
                                     text.data(), text.size(), t))
          << t;
    }
    {
      scan::EagerEngine engine(sfa, &dfa);
      EXPECT_EQ(find_all_matches_parallel(sfa, dfa, text, t),
                scan::run_find_all(engine, scan::default_executor(),
                                   text.data(), text.size(), t))
          << t;
    }
  }
}

TEST(WrapperParity, ShortInputWrappersMatchChunksOneSubstrate) {
  // Below the chunking threshold every wrapper must behave exactly like the
  // chunks=1 substrate call it now delegates to.
  const Dfa dfa = compile_prosite("[ST]-x-[RK].");
  const Sfa sfa = build_sfa_transposed(dfa);
  const auto text = random_protein(100, 7);  // < 8*64, clamps to 1 thread
  scan::Executor& exec = scan::default_executor();
  {
    scan::DirectEngine engine(dfa);
    EXPECT_EQ(count_matches_parallel(sfa, dfa, text, 8),
              scan::run_count(engine, exec, text.data(), text.size(), 1));
  }
  {
    scan::DirectEngine engine(dfa);
    EXPECT_EQ(find_first_match_parallel(sfa, dfa, text, 8),
              scan::run_find_first(engine, exec, text.data(), text.size(), 1));
  }
  {
    scan::DirectEngine engine(dfa);
    EXPECT_EQ(find_all_matches_parallel(sfa, dfa, text, 8),
              scan::run_find_all(engine, exec, text.data(), text.size(), 1));
  }
}

TEST(WrapperParity, MatchSpeculativeAccountsRematchedChunksExactly) {
  const Dfa dfa = compile_prosite("N-{P}-[ST]-{P}.");
  for (const unsigned t : {2u, 4u, 8u}) {
    const auto text = random_protein(8192, 61 + t);
    const Dfa::StateId guess = pick_speculation_state(dfa, text);
    const SpeculativeResult wrapper = match_speculative(dfa, text, t, guess);
    EXPECT_EQ(wrapper.chunks, t);

    // Replay the wrapper's substrate call.
    scan::SpeculativeEngine engine(dfa, guess);
    const MatchResult direct = scan::run_accept(
        engine, scan::default_executor(), text.data(), text.size(), t);
    EXPECT_EQ(wrapper.result.accepted, direct.accepted) << t;
    EXPECT_EQ(wrapper.result.final_dfa_state, direct.final_dfa_state) << t;
    EXPECT_EQ(wrapper.rematched_chunks, engine.rematched()) << t;

    // Independent accounting: a chunk c > 0 rematches iff the true entry
    // state at its boundary differs from the speculation; chunk 0 never
    // speculates.
    unsigned expect_rematched = 0;
    const std::size_t per = text.size() / t;
    Dfa::StateId q = dfa.start();
    std::size_t at = 0;
    for (unsigned c = 1; c < t; ++c) {
      for (; at < per * c; ++at) q = dfa.transition(q, text[at]);
      if (q != guess) ++expect_rematched;
    }
    EXPECT_EQ(wrapper.rematched_chunks, expect_rematched) << t;
  }
}

TEST(WrapperParity, SpeculativeShortInputNeverRematches) {
  const Dfa dfa = compile_prosite("R-G-D.");
  const auto text = random_protein(100, 3);  // clamps to 1 chunk
  const SpeculativeResult r = match_speculative(dfa, text, 8);
  EXPECT_EQ(r.chunks, 1u);
  EXPECT_EQ(r.rematched_chunks, 0u);
  EXPECT_EQ(r.result.accepted, match_sequential(dfa, text).accepted);
}

TEST(WrapperParity, MatchNarrowedIsNarrowedRunAccept) {
  const Dfa dfa = compile_prosite("N-{P}-[ST]-{P}.");
  for (const unsigned t : {2u, 4u, 8u}) {
    const auto text = random_protein(8192, 83 + t);
    NarrowedMatchOptions options;
    options.peek_k = 2;
    const NarrowedResult wrapper = match_narrowed(dfa, text, t, options);
    EXPECT_EQ(wrapper.chunks, t);

    // Replay the wrapper's substrate call.
    scan::NarrowedOptions nopt;
    nopt.peek_k = options.peek_k;
    nopt.shrink_threshold = options.shrink_threshold;
    scan::NarrowedEngine engine(dfa, nopt);
    const MatchResult direct = scan::run_accept(
        engine, scan::default_executor(), text.data(), text.size(), t);
    EXPECT_EQ(wrapper.result.accepted, direct.accepted) << t;
    EXPECT_EQ(wrapper.result.final_dfa_state, direct.final_dfa_state) << t;
    EXPECT_EQ(wrapper.narrowed_chunks, engine.narrowed_chunks()) << t;
    EXPECT_EQ(wrapper.fallback_chunks, engine.fallback_chunks()) << t;
    EXPECT_EQ(wrapper.entry_states, engine.entry_states_simulated()) << t;
    EXPECT_EQ(wrapper.result.accepted, match_sequential(dfa, text).accepted);
  }
}

TEST(WrapperParity, NarrowedShortInputIsSequentialBitForBit) {
  // Below the chunking threshold the wrapper clamps to one chunk and the
  // engine's single-chunk plan is one dfa.run from the start state — no
  // narrowing, no fallback, regardless of peek_k.
  const Dfa dfa = compile_prosite("[ST]-x-[RK].");
  const auto text = random_protein(100, 5);  // < 8*64, clamps to 1 thread
  for (const unsigned peek : {0u, 2u, 1000u}) {
    NarrowedMatchOptions options;
    options.peek_k = peek;
    const NarrowedResult r = match_narrowed(dfa, text, 8, options);
    const MatchResult ref = match_sequential(dfa, text);
    EXPECT_EQ(r.chunks, 1u) << peek;
    EXPECT_EQ(r.narrowed_chunks, 0u) << peek;
    EXPECT_EQ(r.fallback_chunks, 0u) << peek;
    EXPECT_EQ(r.entry_states, 0u) << peek;
    EXPECT_EQ(r.result.accepted, ref.accepted) << peek;
    EXPECT_EQ(r.result.final_dfa_state, ref.final_dfa_state) << peek;
  }
}

TEST(WrapperParity, NarrowedEmptyInputReadsStartState) {
  // The empty-input edge: no symbol to peek, no boundary to narrow
  // through; the result is the DFA start state's acceptance (f_start), and
  // counting returns zero — identical to the sequential fallback.
  const Dfa dfa = compile_prosite("R-G-D.");
  const std::vector<Symbol> empty;
  NarrowedMatchOptions options;
  options.peek_k = 8;
  const NarrowedResult r = match_narrowed(dfa, empty, 8, options);
  EXPECT_EQ(r.chunks, 1u);
  EXPECT_EQ(r.result.accepted, dfa.accepting(dfa.start()));
  EXPECT_EQ(r.result.final_dfa_state, dfa.start());
  EXPECT_EQ(count_matches_narrowed(dfa, empty, 8, options).count, 0u);
}

TEST(WrapperParity, NarrowedPeekBeyondChunkLengthStaysExact) {
  // 8 chunks over 1024 symbols leaves 128-symbol chunks; peek_k 1000
  // exceeds every chunk, so set-image composition consumes whole chunks
  // and the clamped peek must not read past chunk ends.
  const Dfa dfa = compile_prosite("N-{P}-[ST]-{P}.");
  const auto text = random_protein(1024, 11);
  NarrowedMatchOptions options;
  options.peek_k = 1000;
  const NarrowedResult r = match_narrowed(dfa, text, 8, options);
  const MatchResult ref = match_sequential(dfa, text);
  EXPECT_EQ(r.chunks, 8u);
  EXPECT_EQ(r.result.accepted, ref.accepted);
  EXPECT_EQ(r.result.final_dfa_state, ref.final_dfa_state);
  EXPECT_EQ(count_matches_narrowed(dfa, text, 8, options).count,
            dfa.count_accepting_prefixes(text.data(), text.size()));
}

// ---- Engine facade ------------------------------------------------------------

TEST(EngineTest, FromProsite) {
  const Engine engine = Engine::from_prosite("R-G-D.", BuildMethod::kParallel);
  EXPECT_TRUE(engine.contains("MAARGDKLL"));
  EXPECT_FALSE(engine.contains("MAARDGKLL"));
  EXPECT_EQ(engine.build_stats().sfa_states, engine.sfa().num_states());
}

TEST(EngineTest, FromRegexDna) {
  const Engine engine =
      Engine::from_regex("GAT{2,3}C", Alphabet::dna(), BuildMethod::kTransposed);
  EXPECT_TRUE(engine.contains("AAGATTCAA"));
  EXPECT_TRUE(engine.contains("GATTTC"));
  EXPECT_FALSE(engine.contains("GATC"));
}

TEST(EngineTest, CountsOccurrences) {
  const Engine engine = Engine::from_prosite("[ST]-x-[RK].");
  // "SAK" at 0..2 and "TGR" at 3..5: accepting end-positions at 3 and 6...
  // absorbing semantics: count from first match end to end of text.
  const std::string text = "SAKTGRAAA";
  const std::size_t count = engine.count(text, 2);
  EXPECT_EQ(count, engine.count(text, 1));
  EXPECT_GT(count, 0u);
}

TEST(EngineTest, MultiThreadedContains) {
  const Engine engine = Engine::from_prosite("N-{P}-[ST]-{P}.");
  std::string text(20000, 'A');
  text.replace(15000, 4, "NGSG");
  EXPECT_TRUE(engine.contains(text, 8));
  std::string clean(20000, 'A');
  EXPECT_FALSE(engine.contains(clean, 8));
}

TEST(EngineTest, RejectsForeignCharacters) {
  const Engine engine = Engine::from_prosite("R-G-D.");
  EXPECT_THROW(engine.contains("RGD123"), std::invalid_argument);
}

}  // namespace
}  // namespace sfa
