// Tests for the probabilistic fingerprint-only builder (the paper's §III-A
// uninvestigated variant, implemented here as an extension).
#include <gtest/gtest.h>

#include "sfa/core/build.hpp"
#include "sfa/core/equivalence.hpp"
#include "sfa/prosite/patterns.hpp"
#include "sfa/prosite/prosite_parser.hpp"

namespace sfa {
namespace {

TEST(Probabilistic, MatchesExactBuilderOnSamples) {
  // With 64-bit Rabin fingerprints and test-sized state sets, the collision
  // probability is ~|Q_s|^2/2^64 — the state counts must match the exact
  // builder on every sample.
  for (const char* pattern :
       {"R-G-D.", "N-{P}-[ST]-{P}.", "[AG]-x(4)-G-K-[ST].",
        "C-x-[DN]-x(4)-[FY]-x-C-x-C.", "[RK]-x(2,3)-[DE]-x(2,3)-Y."}) {
    SCOPED_TRACE(pattern);
    const Dfa dfa = compile_prosite(pattern);
    const Sfa exact = build_sfa_transposed(dfa);
    const Sfa prob = build_sfa_probabilistic(dfa);
    EXPECT_EQ(prob.num_states(), exact.num_states());
  }
}

TEST(Probabilistic, VerifiesWithMappings) {
  const Dfa dfa = compile_prosite("[ST]-x(2)-[DE].");
  const Sfa sfa = build_sfa_probabilistic(dfa);
  const VerifyReport report =
      verify_sfa(sfa, dfa, {.random_inputs = 50, .structural_samples = 0});
  EXPECT_TRUE(report.ok) << report.first_failure;
}

TEST(Probabilistic, FrontierMemoryIsBounded) {
  // The whole point: resident payload memory is the frontier, not |Q_s|.
  const Dfa dfa = compile_prosite("C-x-[DN]-x(4)-[FY]-x-C-x-C.");
  BuildOptions opt;
  opt.keep_mappings = false;
  BuildStats stats;
  const Sfa sfa = build_sfa_probabilistic(dfa, opt, &stats);
  EXPECT_GT(stats.peak_frontier_bytes, 0u);
  // Frontier peak must be well below the full mapping store.
  EXPECT_LT(stats.peak_frontier_bytes, stats.mapping_bytes_uncompressed);
  // And the retained per-state footprint is a fixed-size node, not n cells.
  EXPECT_LT(stats.mapping_bytes_stored, stats.mapping_bytes_uncompressed);
  EXPECT_FALSE(sfa.has_mappings());
}

TEST(Probabilistic, DispatchThroughBuildSfa) {
  const Dfa dfa = compile_prosite("R-G-D.");
  BuildStats stats;
  const Sfa sfa =
      build_sfa(dfa, BuildMethod::kProbabilistic, {}, &stats);
  EXPECT_EQ(sfa.num_states(), 12u);
  EXPECT_STREQ(build_method_name(BuildMethod::kProbabilistic),
               "probabilistic");
}

TEST(Probabilistic, RBenchmarkAgrees) {
  const Dfa dfa = make_r_benchmark_dfa(150, 500);
  const Sfa exact = build_sfa_transposed(dfa);
  const Sfa prob = build_sfa_probabilistic(dfa);
  EXPECT_EQ(prob.num_states(), exact.num_states());
  EXPECT_TRUE(verify_sfa(prob, dfa, {.random_inputs = 30}).ok);
}

TEST(Probabilistic, MaxStatesGuard) {
  const Dfa dfa = compile_prosite("C-x(2,4)-C-x(3)-H.");
  BuildOptions opt;
  opt.max_states = 50;
  EXPECT_THROW(build_sfa_probabilistic(dfa, opt), std::runtime_error);
}

}  // namespace
}  // namespace sfa
