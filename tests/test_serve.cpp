// Service-layer tests (docs/TESTING.md): registry union semantics, cache
// residency/persistence, batched submit vs the sequential reference, the
// pool-dispatch accounting regression, 8-thread submit stress, the
// Aho–Corasick fuzz differential, and the serve oracle's teeth.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "harness/serve_oracle.hpp"
#include "harness/stress.hpp"
#include "sfa/automata/ops.hpp"
#include "sfa/core/match.hpp"
#include "sfa/core/scan/executor.hpp"
#include "sfa/prosite/patterns.hpp"
#include "sfa/serve/match_service.hpp"
#include "sfa/support/rng.hpp"

namespace sfa {
namespace {

using serve::EngineChoice;
using serve::MatchRequest;
using serve::MatchResponse;
using serve::MatchService;
using serve::PatternRegistry;
using serve::PatternSpec;
using serve::PatternSyntax;
using serve::ServiceOptions;
using serve::SfaCacheOptions;

PatternSpec literal(const std::string& text) {
  return PatternSpec{"lit:" + text, PatternSyntax::kLiteral, text};
}
PatternSpec regex(const std::string& text) {
  return PatternSpec{"re:" + text, PatternSyntax::kRegex, text};
}

/// SFA_FUZZ_ITERS-scaled iteration count (same contract as test_fuzz).
int fuzz_iters(int dflt) {
  static const double scale = [] {
    const char* env = std::getenv("SFA_FUZZ_ITERS");
    if (env == nullptr || *env == '\0') return 1.0;
    const double requested = std::strtod(env, nullptr);
    return requested > 0 ? requested / 3000.0 : 1.0;
  }();
  const int scaled = static_cast<int>(dflt * scale);
  return scaled < 1 ? 1 : scaled;
}

std::vector<Symbol> random_input(Xoshiro256& rng, unsigned k,
                                 std::size_t max_len) {
  std::vector<Symbol> v(1 + rng.below(max_len));
  for (auto& s : v) s = static_cast<Symbol>(rng.below(k));
  return v;
}

/// A scratch directory under the build tree, wiped per use.
std::string scratch_dir(const std::string& tag) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / ("sfa_serve_" + tag)).string();
  std::filesystem::remove_all(dir);
  return dir;
}

// ---------------------------------------------------------------------------
// PatternRegistry

TEST(ServeRegistry, FingerprintIsOrderAndDuplicateInvariant) {
  PatternRegistry registry;
  const std::vector<PatternSpec> a = {literal("RGD"), regex("W.K"),
                                      literal("ACD")};
  const std::vector<PatternSpec> shuffled = {regex("W.K"), literal("ACD"),
                                             literal("RGD")};
  std::vector<PatternSpec> duplicated = a;
  duplicated.push_back(literal("RGD"));
  EXPECT_EQ(registry.fingerprint(a), registry.fingerprint(shuffled));
  EXPECT_EQ(registry.fingerprint(a), registry.fingerprint(duplicated));
  EXPECT_NE(registry.fingerprint(a), registry.fingerprint({literal("RGD")}));
  // Same text under a different syntax is a different set.
  EXPECT_NE(registry.fingerprint({literal("WAK")}),
            registry.fingerprint({regex("WAK")}));
  // Ids are not part of the key.
  std::vector<PatternSpec> renamed = a;
  for (auto& spec : renamed) spec.id += "-renamed";
  EXPECT_EQ(registry.fingerprint(a), registry.fingerprint(renamed));
}

TEST(ServeRegistry, UnionAcceptsIffSomeMemberAccepts) {
  PatternRegistry registry;
  const std::vector<PatternSpec> set = {literal("RGD"), regex("W.{2}K"),
                                        literal("HH")};
  const Dfa union_dfa = registry.compile_union(set);
  std::vector<Dfa> members;
  for (const auto& spec : set) members.push_back(registry.compile_member(spec));

  Xoshiro256 rng(2017);
  const unsigned k = registry.alphabet().size();
  for (int i = 0; i < 200; ++i) {
    const std::vector<Symbol> input = random_input(rng, k, 64);
    bool any = false;
    for (const Dfa& m : members) any = any || m.accepts(input);
    EXPECT_EQ(union_dfa.accepts(input), any) << "probe " << i;
  }
  // Member witnesses must be found by the union mid-stream.
  for (const Dfa& m : members) {
    const auto word = testing::shortest_accepted_word(m);
    ASSERT_TRUE(word.has_value());
    EXPECT_TRUE(union_dfa.accepts(*word));
  }
}

TEST(ServeRegistry, LiteralSetMatchesAhoCorasick) {
  PatternRegistry registry;
  const std::vector<PatternSpec> set = {literal("RG"), literal("GDH"),
                                        literal("HRG")};
  ASSERT_TRUE(PatternRegistry::all_literal(set));
  const Dfa union_dfa = registry.compile_union(set);
  const AhoCorasick ac = registry.build_aho_corasick(set);

  Xoshiro256 rng(7);
  const unsigned k = registry.alphabet().size();
  for (int i = 0; i < 200; ++i) {
    const std::vector<Symbol> input = random_input(rng, k, 96);
    std::set<std::size_t> ac_ends;
    for (const AcMatch& m : ac.find_all(input.data(), input.size()))
      ac_ends.insert(m.end_position);
    std::set<std::size_t> union_ends;
    Dfa::StateId q = union_dfa.start();
    for (std::size_t p = 0; p < input.size(); ++p) {
      q = union_dfa.transition(q, input[p]);
      if (union_dfa.accepting(q)) union_ends.insert(p + 1);
    }
    // Library DFAs use absorbing match-anywhere acceptance: once the first
    // AC match ends, every later position accepts too.
    std::set<std::size_t> expected;
    if (!ac_ends.empty())
      for (std::size_t p = *ac_ends.begin(); p <= input.size(); ++p)
        expected.insert(p);
    EXPECT_EQ(union_ends, expected) << "probe " << i;
  }
  EXPECT_THROW(registry.build_aho_corasick({regex("A|B")}),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// SfaCache

ServiceOptions small_service_options() {
  ServiceOptions options;
  options.max_batch_workers = 4;
  options.default_chunks = 3;
  return options;
}

TEST(SfaCacheTest, SaveLoadRoundTripAcrossLayouts) {
  const table::TableLayout layouts[] = {table::TableLayout::kDense,
                                        table::TableLayout::kRowDedup,
                                        table::TableLayout::kD2fa};
  for (const auto layout : layouts) {
    const std::string dir =
        scratch_dir("layout_" + std::to_string(static_cast<int>(layout)));

    ServiceOptions options = small_service_options();
    options.cache.disk_dir = dir;
    options.cache.table_layout = layout;

    const std::vector<PatternSpec> set = {literal("RGD"), regex("W.K")};
    std::vector<Symbol> probe;
    std::uint64_t handle = 0;

    {
      MatchService warm(options);
      handle = warm.register_set(set);
      const auto entry = warm.resolve(handle);
      ASSERT_NE(entry, nullptr);
      ASSERT_TRUE(entry->sfa.has_value());
      EXPECT_EQ(entry->sfa->table_layout(), layout);
      EXPECT_EQ(warm.stats().cache.misses, 1u);
      EXPECT_TRUE(std::filesystem::exists(warm.cache().disk_path(handle)));
      const auto word = testing::shortest_accepted_word(entry->dfa);
      ASSERT_TRUE(word.has_value());
      probe = *word;
    }

    // A fresh service over the same directory must hit disk, not rebuild.
    MatchService cold(options);
    const std::uint64_t same = cold.register_set(set);
    EXPECT_EQ(same, handle);
    const auto entry = cold.resolve(handle);
    ASSERT_NE(entry, nullptr);
    ASSERT_TRUE(entry->sfa.has_value());
    EXPECT_EQ(entry->sfa->table_layout(), layout);
    EXPECT_EQ(cold.stats().cache.disk_hits, 1u);
    EXPECT_EQ(cold.stats().cache.misses, 0u);

    // And the reloaded automaton still answers correctly.
    MatchRequest request;
    request.set = handle;
    request.engine = EngineChoice::kEager;
    request.task = serve::TaskKind::kAccept;
    request.data = probe.data();
    request.len = probe.size();
    const MatchResponse response = cold.submit(request);
    ASSERT_TRUE(response.ok) << response.error;
    EXPECT_TRUE(response.accepted);

    std::filesystem::remove_all(dir);
  }
}

TEST(SfaCacheTest, EvictionNeverExceedsBudget) {
  ServiceOptions options = small_service_options();
  MatchService sizing(options);  // measure one entry to pick a tight budget
  const std::uint64_t probe_handle = sizing.register_set({literal("ACDA")});
  const auto probe_entry = sizing.resolve(probe_handle);
  ASSERT_NE(probe_entry, nullptr);

  // Room for roughly two entries of this shape.
  options.cache.memory_budget_bytes = probe_entry->bytes * 5 / 2;
  MatchService service(options);
  const std::string texts[] = {"ACDA", "CDEF", "GHIK", "LMNP", "QRST"};
  std::vector<std::uint64_t> handles;
  for (const std::string& text : texts) {
    handles.push_back(service.register_set({literal(text)}));
    ASSERT_NE(service.resolve(handles.back()), nullptr);
    const auto stats = service.stats().cache;
    EXPECT_LE(stats.resident_bytes, options.cache.memory_budget_bytes)
        << "after inserting " << text;
  }
  const auto stats = service.stats().cache;
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.resident_bytes, options.cache.memory_budget_bytes);
  // Strict LRU: the most recently inserted entry must still be resident.
  EXPECT_NE(service.cache().find(handles.back()), nullptr);
  // The oldest must be gone.
  EXPECT_EQ(service.cache().find(handles.front()), nullptr);
}

TEST(SfaCacheTest, LruTouchProtectsHotEntries) {
  ServiceOptions options = small_service_options();
  MatchService sizing(options);
  const auto probe_entry =
      sizing.resolve(sizing.register_set({literal("ACDA")}));
  ASSERT_NE(probe_entry, nullptr);

  options.cache.memory_budget_bytes = probe_entry->bytes * 5 / 2;
  MatchService service(options);
  const std::uint64_t a = service.register_set({literal("ACDA")});
  const std::uint64_t b = service.register_set({literal("CDEF")});
  ASSERT_NE(service.resolve(a), nullptr);
  ASSERT_NE(service.resolve(b), nullptr);
  ASSERT_NE(service.cache().find(a), nullptr);  // touch: a is now hottest
  const std::uint64_t c = service.register_set({literal("GHIK")});
  ASSERT_NE(service.resolve(c), nullptr);       // evicts to fit: b must go
  EXPECT_NE(service.cache().find(a), nullptr);
  EXPECT_EQ(service.cache().find(b), nullptr);
}

TEST(SfaCacheTest, OversizeEntriesServeButNeverCache) {
  ServiceOptions options = small_service_options();
  options.cache.memory_budget_bytes = 64;  // smaller than any real entry
  MatchService service(options);
  const std::uint64_t handle = service.register_set({literal("RGD")});
  const auto entry = service.resolve(handle);
  ASSERT_NE(entry, nullptr);
  EXPECT_GT(entry->bytes, options.cache.memory_budget_bytes);
  const auto stats = service.stats().cache;
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.resident_bytes, 0u);
  EXPECT_GE(stats.oversize_rejects, 1u);
  EXPECT_EQ(service.cache().find(handle), nullptr);
}

// ---------------------------------------------------------------------------
// MatchService batched submit

TEST(MatchServiceBatch, BatchAgreesWithSingleSubmit) {
  MatchService service(small_service_options());
  const std::uint64_t rgd = service.register_set({literal("RGD"), regex("W.K")});
  const std::uint64_t hh = service.register_set({literal("HH")});

  Xoshiro256 rng(11);
  const unsigned k = service.registry().alphabet().size();
  const std::vector<Symbol> input = random_input(rng, k, 400);

  static constexpr EngineChoice kEngines[] = {
      EngineChoice::kEager, EngineChoice::kLazy, EngineChoice::kSpeculative,
      EngineChoice::kNarrowed};
  static constexpr serve::TaskKind kTasks[] = {
      serve::TaskKind::kAccept, serve::TaskKind::kCount,
      serve::TaskKind::kFindFirst, serve::TaskKind::kFindAll};

  std::vector<MatchRequest> batch;
  for (const auto set : {rgd, hh})
    for (const auto engine : kEngines)
      for (const auto task : kTasks) {
        MatchRequest r;
        r.set = set;
        r.engine = engine;
        r.task = task;
        r.data = input.data();
        r.len = input.size();
        r.chunks = 3;
        batch.push_back(r);
      }

  const std::vector<MatchResponse> batched = service.submit_batch(batch);
  ASSERT_EQ(batched.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const MatchResponse single = service.submit(batch[i]);
    ASSERT_TRUE(batched[i].ok) << batched[i].error;
    ASSERT_TRUE(single.ok) << single.error;
    EXPECT_EQ(batched[i].accepted, single.accepted) << "request " << i;
    EXPECT_EQ(batched[i].count, single.count) << "request " << i;
    EXPECT_EQ(batched[i].first, single.first) << "request " << i;
    EXPECT_EQ(batched[i].positions, single.positions) << "request " << i;
    EXPECT_EQ(batched[i].fingerprint, batch[i].set);
  }
}

TEST(MatchServiceBatch, PoolDispatchAccountingStaysAmortized) {
  MatchService service(small_service_options());
  const std::uint64_t handle = service.register_set({literal("RGD")});
  ASSERT_NE(service.resolve(handle), nullptr);  // warm: no build in the batch

  Xoshiro256 rng(13);
  const unsigned k = service.registry().alphabet().size();
  const std::vector<Symbol> input = random_input(rng, k, 600);

  static constexpr EngineChoice kEngines[] = {
      EngineChoice::kEager, EngineChoice::kLazy, EngineChoice::kSpeculative,
      EngineChoice::kNarrowed};
  const std::size_t n = 16;
  std::vector<MatchRequest> batch;
  for (std::size_t i = 0; i < n; ++i) {
    MatchRequest r;
    r.set = handle;
    r.engine = kEngines[i % 4];
    r.task = serve::TaskKind::kCount;
    r.data = input.data();
    r.len = input.size();
    r.chunks = 4;
    batch.push_back(r);
  }

  const std::uint64_t before = scan::default_executor().stats().pool_dispatches;
  const std::vector<MatchResponse> responses = service.submit_batch(batch);
  const std::uint64_t after = scan::default_executor().stats().pool_dispatches;
  for (const MatchResponse& r : responses) ASSERT_TRUE(r.ok) << r.error;

  // The whole point of batched submit: N requests ride ONE pool dispatch
  // (per-request chunk scans run inline on their worker via the pool's
  // nested-inline guard), not one dispatch per request.
  EXPECT_LE(after - before, 2u);
  EXPECT_LT(after - before, n);
}

TEST(MatchServiceBatch, DispatchStaysAmortizedUnderEveryScheduler) {
  // The nested-inline guard is what keeps batched submit at one dispatch;
  // it must hold whether the outer batch task was stripe-bound, stolen, or
  // claimed off the guided cursor.
  const sched::Policy saved = scan::default_scheduler();
  MatchService service(small_service_options());
  const std::uint64_t handle = service.register_set({literal("RGD")});
  ASSERT_NE(service.resolve(handle), nullptr);

  Xoshiro256 rng(29);
  const unsigned k = service.registry().alphabet().size();
  const std::vector<Symbol> input = random_input(rng, k, 600);

  static constexpr EngineChoice kEngines[] = {
      EngineChoice::kEager, EngineChoice::kLazy, EngineChoice::kSpeculative,
      EngineChoice::kNarrowed};
  const std::size_t n = 16;
  std::vector<MatchRequest> batch;
  for (std::size_t i = 0; i < n; ++i) {
    MatchRequest r;
    r.set = handle;
    r.engine = kEngines[i % 4];
    r.task = serve::TaskKind::kCount;
    r.data = input.data();
    r.len = input.size();
    r.chunks = 4;
    batch.push_back(r);
  }

  for (unsigned p = 0; p < sched::kNumPolicies; ++p) {
    const auto policy = static_cast<sched::Policy>(p);
    scan::set_default_scheduler(policy);
    const std::uint64_t before =
        scan::default_executor().stats().pool_dispatches;
    const std::vector<MatchResponse> responses = service.submit_batch(batch);
    const std::uint64_t after =
        scan::default_executor().stats().pool_dispatches;
    for (const MatchResponse& r : responses)
      ASSERT_TRUE(r.ok) << sched::policy_name(policy) << ": " << r.error;
    EXPECT_LE(after - before, 2u) << sched::policy_name(policy);
  }
  scan::set_default_scheduler(saved);
}

TEST(MatchServiceBatch, ErrorsAreIsolatedPerRequest) {
  MatchService service(small_service_options());
  const std::uint64_t good = service.register_set({literal("RGD")});
  const std::vector<Symbol> input =
      service.registry().alphabet().encode("AARGDAA");

  std::vector<MatchRequest> batch(3);
  batch[0].set = good;
  batch[1].set = 0xDEADBEEF;  // never registered
  batch[2].set = good;
  for (auto& r : batch) {
    r.task = serve::TaskKind::kFindFirst;
    r.data = input.data();
    r.len = input.size();
  }
  const auto responses = service.submit_batch(batch);
  ASSERT_TRUE(responses[0].ok) << responses[0].error;
  EXPECT_FALSE(responses[1].ok);
  EXPECT_NE(responses[1].error.find("unknown pattern set"), std::string::npos);
  ASSERT_TRUE(responses[2].ok) << responses[2].error;
  EXPECT_EQ(responses[0].first, 5u);  // "RGD" ends after symbol 5
  EXPECT_EQ(service.stats().failed_requests, 1u);
}

TEST(MatchServiceBatch, EagerBudgetDegradesToDfaOnlyEntry) {
  ServiceOptions options = small_service_options();
  options.max_eager_dfa_states = 1;  // force every set over the eager budget
  MatchService service(options);
  const std::uint64_t handle = service.register_set({literal("RGD")});
  const auto entry = service.resolve(handle);
  ASSERT_NE(entry, nullptr);
  EXPECT_FALSE(entry->sfa.has_value());

  const std::vector<Symbol> input =
      service.registry().alphabet().encode("AARGDAAWKY");
  MatchRequest r;
  r.set = handle;
  r.data = input.data();
  r.len = input.size();
  r.chunks = 3;

  r.engine = EngineChoice::kEager;
  const MatchResponse eager = service.submit(r);
  EXPECT_FALSE(eager.ok);
  EXPECT_NE(eager.error.find("eager SFA budget"), std::string::npos);

  for (const auto engine : {EngineChoice::kLazy, EngineChoice::kSpeculative,
                            EngineChoice::kNarrowed}) {
    r.engine = engine;
    r.task = serve::TaskKind::kCount;
    const MatchResponse resp = service.submit(r);
    ASSERT_TRUE(resp.ok) << resp.error;
    // "RGD" ends at position 5 of the 10-symbol input; absorbing
    // acceptance counts every position from there on.
    EXPECT_EQ(resp.count, 6u) << engine_choice_name(engine);
  }
}

// ---------------------------------------------------------------------------
// Concurrent submit stress

TEST(ServeStress, ConcurrentBatchedSubmit) {
  ServiceOptions options;
  options.max_batch_workers = 4;
  options.default_chunks = 2;
  MatchService service(options);

  const std::vector<std::vector<PatternSpec>> sets = {
      {literal("RGD"), regex("W.K")},
      {literal("HH")},
      {literal("ACD"), literal("DCA")},
  };
  std::vector<std::uint64_t> handles;
  for (const auto& set : sets) {
    handles.push_back(service.register_set(set));
    ASSERT_NE(service.resolve(handles.back()), nullptr);
  }

  const unsigned k = service.registry().alphabet().size();
  std::atomic<std::uint64_t> submitted{0};
  const std::uint64_t before = service.stats().requests;

  testing::StressOptions stress;
  stress.threads = 8;
  stress.phases = 3;
  stress.ops_per_thread = testing::scaled_ops(96);
  testing::run_stress(
      stress,
      [&](unsigned tid, unsigned phase, Xoshiro256& rng) {
        (void)tid;
        (void)phase;
        for (std::uint64_t op = 0; op < stress.ops_per_thread; ++op) {
          const std::vector<Symbol> input = random_input(rng, k, 300);
          std::vector<MatchRequest> batch(1 + rng.below(6));
          for (auto& r : batch) {
            r.set = handles[rng.below(handles.size())];
            r.engine = static_cast<EngineChoice>(rng.below(4));
            r.task = static_cast<serve::TaskKind>(rng.below(4));
            r.data = input.data();
            r.len = input.size();
            r.chunks = 1 + static_cast<unsigned>(rng.below(4));
          }
          submitted.fetch_add(batch.size(), std::memory_order_relaxed);
          for (const MatchResponse& resp : service.submit_batch(batch))
            ASSERT_TRUE(resp.ok) << resp.error;
        }
      },
      [&](unsigned phase) {
        (void)phase;
        // Quiescent invariants: accounting adds up, nothing failed, and the
        // cache never grew past its budget.
        const auto stats = service.stats();
        EXPECT_EQ(stats.requests - before,
                  submitted.load(std::memory_order_relaxed));
        EXPECT_EQ(stats.failed_requests, 0u);
        if (options.cache.memory_budget_bytes != 0)
          EXPECT_LE(stats.cache.resident_bytes,
                    options.cache.memory_budget_bytes);
      });
}

// ---------------------------------------------------------------------------
// Fuzz: random literal subsets vs Aho–Corasick

TEST(ServeFuzz, RandomLiteralSetsMatchAhoCorasick) {
  const Alphabet& dna = Alphabet::dna();
  ServiceOptions options = small_service_options();
  options.alphabet = &dna;
  MatchService service(options);
  const char bases[] = "ACGT";

  Xoshiro256 rng(0xF0225EED);
  const int iters = fuzz_iters(120);
  for (int iter = 0; iter < iters; ++iter) {
    std::vector<PatternSpec> set(1 + rng.below(4));
    for (auto& spec : set) {
      std::string text(1 + rng.below(6), 'A');
      for (auto& c : text) c = bases[rng.below(4)];
      spec = literal(text);
    }
    const std::uint64_t handle = service.register_set(set);
    const AhoCorasick ac = service.registry().build_aho_corasick(set);

    const std::vector<Symbol> input = random_input(rng, 4, 320);
    // Absorbing acceptance: the service reports every position from the
    // earliest Aho–Corasick match end onward.
    std::vector<std::size_t> expected;
    const auto matches = ac.find_all(input.data(), input.size());
    if (!matches.empty()) {
      std::size_t first = matches.front().end_position;
      for (const AcMatch& m : matches) first = std::min(first, m.end_position);
      for (std::size_t p = first; p <= input.size(); ++p)
        expected.push_back(p);
    }

    MatchRequest r;
    r.set = handle;
    r.engine = static_cast<EngineChoice>(rng.below(4));
    r.task = serve::TaskKind::kFindAll;
    r.data = input.data();
    r.len = input.size();
    r.chunks = 1 + static_cast<unsigned>(rng.below(4));
    const MatchResponse resp = service.submit(r);
    ASSERT_TRUE(resp.ok) << resp.error;
    EXPECT_EQ(resp.positions, expected)
        << "iter " << iter << " engine " << engine_choice_name(r.engine);
  }
}

// ---------------------------------------------------------------------------
// Serve oracle

testing::ServeOracleOptions quick_oracle_options() {
  testing::ServeOracleOptions options;
  options.probe_inputs = 8;
  options.max_probe_length = 160;
  return options;
}

TEST(OracleServe, AgreesOnSeededSets) {
  MatchService service(small_service_options());
  const testing::ServeOracle oracle(quick_oracle_options());

  const std::vector<std::pair<std::string, std::vector<PatternSpec>>> sets = {
      {"literals", {literal("RGD"), literal("WKY"), literal("HH")}},
      {"mixed", {literal("ACDC"), regex("W.{2}K|HDEL")}},
      {"prosite",
       {PatternSpec{"ps", PatternSyntax::kProsite, "C-x(2)-[DE]"},
        literal("KDEL")}},
  };
  for (const auto& [name, set] : sets) {
    const std::uint64_t handle = service.register_set(set);
    const auto divergence = oracle.check_serve(service, handle, name);
    EXPECT_FALSE(divergence.has_value())
        << name << ": " << divergence->detail << "\n"
        << divergence->reproducer();
  }
}

TEST(OracleServe, CatchesCorruptCacheEntry) {
  MatchService service(small_service_options());
  // Two same-shape single-literal sets: after the corruption, A's
  // fingerprint answers with B's automaton — exactly the binding bug the
  // cache column exists to catch.
  const std::uint64_t a = service.register_set({literal("RGD")});
  const std::uint64_t b = service.register_set({literal("WKY")});
  ASSERT_NE(service.resolve(a), nullptr);
  ASSERT_NE(service.resolve(b), nullptr);
  service.cache().corrupt_entry_for_test(a, b);

  const testing::ServeOracle oracle(quick_oracle_options());
  const auto divergence = oracle.check_serve(service, a, "poisoned");
  ASSERT_TRUE(divergence.has_value())
      << "oracle missed the poisoned cache binding";
  EXPECT_EQ(divergence->kind, "service");
  // Input shrinking ran against the SAME poisoned handle, so the minimized
  // input still reproduces; the witness probe guarantees it is tiny.
  EXPECT_LE(divergence->input.size(), 8u);
  // And the clean set B still checks out — the corruption is A's alone.
  const auto clean = oracle.check_serve(service, b, "clean");
  EXPECT_FALSE(clean.has_value()) << clean->detail;
}

}  // namespace
}  // namespace sfa
