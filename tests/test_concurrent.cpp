// Concurrency substrate tests: work-stealing deque, global queue, lock-free
// hash set, MPMC queue, arenas, memory manager — sequential semantics plus
// multi-threaded stress (threads interleave even on one core).
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <deque>
#include <numeric>
#include <set>
#include <thread>

#include "sfa/concurrent/arena.hpp"
#include "sfa/concurrent/barrier.hpp"
#include "sfa/concurrent/global_queue.hpp"
#include "sfa/concurrent/lockfree_hash_set.hpp"
#include "sfa/concurrent/memory_manager.hpp"
#include "sfa/concurrent/mpmc_queue.hpp"
#include "sfa/concurrent/ws_queue.hpp"

namespace sfa {
namespace {

// ---- WorkStealingQueue ---------------------------------------------------------

TEST(WsQueue, OwnerLifoOrder) {
  WorkStealingQueue q;
  q.push(1);
  q.push(2);
  q.push(3);
  EXPECT_EQ(q.pop(), 3u);
  EXPECT_EQ(q.pop(), 2u);
  EXPECT_EQ(q.pop(), 1u);
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(WsQueue, StealTakesOldest) {
  WorkStealingQueue q;
  q.push(1);
  q.push(2);
  EXPECT_EQ(q.steal(), 1u);
  EXPECT_EQ(q.pop(), 2u);
  EXPECT_EQ(q.steal(), std::nullopt);
}

TEST(WsQueue, GrowsPastInitialCapacity) {
  WorkStealingQueue q(16);
  for (std::uint64_t i = 1; i <= 1000; ++i) q.push(i);
  EXPECT_EQ(q.size_approx(), 1000u);
  for (std::uint64_t i = 1000; i >= 1; --i) EXPECT_EQ(q.pop(), i);
}

TEST(WsQueue, InterleavedPushPopSteal) {
  WorkStealingQueue q;
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 1; i <= 100; ++i) {
    q.push(i);
    if (i % 3 == 0) {
      const auto v = q.steal();
      ASSERT_TRUE(v);
      seen.insert(*v);
    }
  }
  while (const auto v = q.pop()) seen.insert(*v);
  EXPECT_EQ(seen.size(), 100u);
}

TEST(WsQueueStress, ConcurrentTheftLosesNothing) {
  // One owner pushes/pops; several thieves steal; every item must be
  // consumed exactly once.
  constexpr std::uint64_t kItems = 20000;
  constexpr unsigned kThieves = 3;
  WorkStealingQueue q;
  std::atomic<std::uint64_t> sum{0};
  std::atomic<std::uint64_t> consumed{0};
  std::atomic<bool> done{false};

  std::vector<std::thread> thieves;
  for (unsigned t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      while (!done.load(std::memory_order_acquire) || q.size_approx() > 0) {
        if (const auto v = q.steal()) {
          sum.fetch_add(*v, std::memory_order_relaxed);
          consumed.fetch_add(1, std::memory_order_relaxed);
        } else {
          cpu_pause();
        }
      }
    });
  }

  std::uint64_t owner_sum = 0, owner_count = 0;
  for (std::uint64_t i = 1; i <= kItems; ++i) {
    q.push(i);
    if (i % 2 == 0) {
      if (const auto v = q.pop()) {
        owner_sum += *v;
        ++owner_count;
      }
    }
  }
  while (const auto v = q.pop()) {
    owner_sum += *v;
    ++owner_count;
  }
  done.store(true, std::memory_order_release);
  for (auto& th : thieves) th.join();

  EXPECT_EQ(owner_count + consumed.load(), kItems);
  EXPECT_EQ(owner_sum + sum.load(), kItems * (kItems + 1) / 2);
}

TEST(WsQueueStress, GrowthUnderConcurrentTheft) {
  // Force repeated array growth (tiny initial capacity) while thieves are
  // actively stealing: the Chase-Lev grow path must never lose or duplicate
  // items even when a thief reads from the retired array.
  constexpr std::uint64_t kItems = 30000;
  WorkStealingQueue q(2);  // rounds up to the 16-slot minimum
  std::atomic<std::uint64_t> stolen_sum{0}, stolen_count{0};
  std::atomic<bool> done{false};

  std::vector<std::thread> thieves;
  for (int t = 0; t < 2; ++t) {
    thieves.emplace_back([&] {
      while (!done.load(std::memory_order_acquire) || q.size_approx() > 0) {
        if (const auto v = q.steal()) {
          stolen_sum.fetch_add(*v, std::memory_order_relaxed);
          stolen_count.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  // Push in large bursts so the array must double many times mid-theft.
  std::uint64_t owner_sum = 0, owner_count = 0;
  for (std::uint64_t i = 1; i <= kItems; ++i) {
    q.push(i);
    if (i % 1024 == 0) {
      // Drain half to keep the deque oscillating.
      for (int d = 0; d < 512; ++d) {
        if (const auto v = q.pop()) {
          owner_sum += *v;
          ++owner_count;
        }
      }
    }
  }
  while (const auto v = q.pop()) {
    owner_sum += *v;
    ++owner_count;
  }
  done.store(true, std::memory_order_release);
  for (auto& th : thieves) th.join();

  EXPECT_EQ(owner_count + stolen_count.load(), kItems);
  EXPECT_EQ(owner_sum + stolen_sum.load(), kItems * (kItems + 1) / 2);
}

TEST(WsQueueStress, InsertWhileStealNearestVictim) {
  // Regression for the builder's nearest-victim stealing path
  // (ParallelBuilder::get_work): owners keep INSERTING into their own deque
  // while thieves walk the victim ring (tid+1, tid+2, ...) and steal.  The
  // dangerous interleaving is steal() racing push()/pop() on a deque holding
  // a single item — the t == b CAS arm — which this keeps permanently hot by
  // pushing one item at a time into mostly-empty queues.
  constexpr unsigned kWorkers = 4;
  constexpr std::uint64_t kItemsPerOwner = 15000;
  constexpr std::uint64_t kSeedItems = 256;
  std::vector<WorkStealingQueue> queues(kWorkers);
  std::atomic<std::uint64_t> consumed_sum{0}, consumed_count{0};
  std::atomic<std::uint64_t> stolen_count{0};
  std::atomic<unsigned> owners_done{0};

  // Pre-seed every queue (ownership hands over cleanly at thread creation):
  // whichever thread the scheduler runs first finds its victims non-empty,
  // so the cross-thread steal path runs even under a fully sequential
  // single-core schedule.
  for (unsigned tid = 0; tid < kWorkers; ++tid)
    for (std::uint64_t j = 1; j <= kSeedItems; ++j)
      queues[tid].push((static_cast<std::uint64_t>(tid) << 32) |
                       (kItemsPerOwner + j));

  std::vector<std::thread> team;
  for (unsigned tid = 0; tid < kWorkers; ++tid) {
    team.emplace_back([&, tid] {
      // Owner role: trickle items in one at a time so steal() almost always
      // contends on the last element.
      std::uint64_t owner_sum = 0, owner_taken = 0;
      for (std::uint64_t i = 1; i <= kItemsPerOwner; ++i) {
        queues[tid].push((static_cast<std::uint64_t>(tid) << 32) | i);
        if (i % 2 == 0) {
          if (const auto v = queues[tid].pop()) {
            owner_sum += *v;
            ++owner_taken;
          }
        }
        // Thief role, interleaved with inserts: nearest victim first.
        if (i % 3 == 0) {
          for (unsigned d = 1; d < kWorkers; ++d) {
            if (const auto v = queues[(tid + d) % kWorkers].steal()) {
              owner_sum += *v;
              ++owner_taken;
              stolen_count.fetch_add(1, std::memory_order_relaxed);
              break;
            }
          }
        }
      }
      owners_done.fetch_add(1, std::memory_order_release);
      // Keep stealing until every owner has stopped inserting and the ring
      // is empty — items pushed late must still be consumed exactly once.
      for (;;) {
        bool got = false;
        for (unsigned d = 0; d < kWorkers; ++d) {
          if (const auto v = queues[(tid + d) % kWorkers].steal()) {
            owner_sum += *v;
            ++owner_taken;
            got = true;
            if (d > 0) stolen_count.fetch_add(1, std::memory_order_relaxed);
          }
        }
        if (!got && owners_done.load(std::memory_order_acquire) == kWorkers) {
          bool all_empty = true;
          for (auto& q : queues) all_empty &= q.size_approx() == 0;
          if (all_empty) break;
        }
        if (!got) cpu_pause();
      }
      consumed_sum.fetch_add(owner_sum, std::memory_order_relaxed);
      consumed_count.fetch_add(owner_taken, std::memory_order_relaxed);
    });
  }
  for (auto& th : team) th.join();

  std::uint64_t expect_sum = 0;
  for (unsigned tid = 0; tid < kWorkers; ++tid)
    expect_sum += (kItemsPerOwner + kSeedItems) *
                      (static_cast<std::uint64_t>(tid) << 32) +
                  kItemsPerOwner * (kItemsPerOwner + 1) / 2 +
                  kSeedItems * kItemsPerOwner + kSeedItems * (kSeedItems + 1) / 2;
  EXPECT_EQ(consumed_count.load(), kWorkers * (kItemsPerOwner + kSeedItems));
  EXPECT_EQ(consumed_sum.load(), expect_sum);
  EXPECT_GT(stolen_count.load(), 0u);  // the steal path actually ran
}

// ---- GlobalQueue ------------------------------------------------------------------

TEST(GlobalQueueTest, StaticPartitionByThreadId) {
  GlobalQueue q(16);
  for (std::uint64_t i = 1; i <= 6; ++i) EXPECT_TRUE(q.try_enqueue(i));
  // Two consumers: thread 0 owns slots 0,2,4; thread 1 owns 1,3,5.
  GlobalQueue::Cursor c0(0, 2), c1(1, 2);
  bool ex;
  EXPECT_EQ(c0.take(q, ex), 1u);
  EXPECT_EQ(c0.take(q, ex), 3u);
  EXPECT_EQ(c1.take(q, ex), 2u);
  EXPECT_EQ(c0.take(q, ex), 5u);
  EXPECT_EQ(c1.take(q, ex), 4u);
  EXPECT_EQ(c1.take(q, ex), 6u);
  // No more published items; queue still open.
  EXPECT_EQ(c0.take(q, ex), std::nullopt);
  EXPECT_FALSE(ex);
  q.close();
  EXPECT_EQ(c0.take(q, ex), std::nullopt);
  EXPECT_TRUE(ex);
}

TEST(GlobalQueueTest, FullQueueRejectsEnqueue) {
  GlobalQueue q(4);
  for (std::uint64_t i = 1; i <= 4; ++i) EXPECT_TRUE(q.try_enqueue(i));
  EXPECT_FALSE(q.try_enqueue(5));
  EXPECT_EQ(q.size(), 4u);
}

TEST(GlobalQueueStress, ConcurrentEnqueueAllSlotsDistinct) {
  constexpr std::size_t kCap = 8192;
  GlobalQueue q(kCap);
  constexpr unsigned kProducers = 4;
  std::vector<std::thread> team;
  for (unsigned t = 0; t < kProducers; ++t) {
    team.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kCap; ++i)
        if (!q.try_enqueue((static_cast<std::uint64_t>(t) << 32) | (i + 1)))
          break;
    });
  }
  for (auto& th : team) th.join();
  EXPECT_EQ(q.size(), kCap);
  q.close();

  std::set<std::uint64_t> seen;
  GlobalQueue::Cursor cursor(0, 1);
  bool ex = false;
  while (const auto v = cursor.take(q, ex)) seen.insert(*v);
  EXPECT_TRUE(ex);
  EXPECT_EQ(seen.size(), kCap);  // no slot written twice / lost
}

// ---- LockFreeHashSet ---------------------------------------------------------------

struct IntNode {
  std::atomic<IntNode*> next{nullptr};
  std::uint64_t fp = 0;
  int value = 0;
};
struct IntTraits {
  static std::atomic<IntNode*>& next(IntNode& n) { return n.next; }
  static std::uint64_t fingerprint(const IntNode& n) { return n.fp; }
  static bool same_state(const IntNode& a, const IntNode& b) {
    return a.value == b.value;
  }
};

TEST(LockFreeHashSetTest, InsertAndDuplicate) {
  LockFreeHashSet<IntNode, IntTraits> set(64);
  IntNode a{{}, 42, 1}, b{{}, 42, 1}, c{{}, 42, 2};
  EXPECT_TRUE(set.insert_if_absent(&a).inserted);
  const auto r = set.insert_if_absent(&b);
  EXPECT_FALSE(r.inserted);
  EXPECT_EQ(r.winner, &a);
  // Same fingerprint, different state: fingerprint collision handled.
  EXPECT_TRUE(set.insert_if_absent(&c).inserted);
  EXPECT_GE(set.counters.fp_collisions.load(), 1u);
}

TEST(LockFreeHashSetTest, FindAfterClearAndReinsert) {
  LockFreeHashSet<IntNode, IntTraits> set(64);
  IntNode a{{}, 7, 10};
  set.insert_if_absent(&a);
  EXPECT_EQ(set.find(7, a), &a);
  set.clear();
  EXPECT_EQ(set.find(7, a), nullptr);
  a.next.store(nullptr, std::memory_order_relaxed);
  set.insert_unchecked(&a);
  EXPECT_EQ(set.find(7, a), &a);
}

TEST(LockFreeHashSetStress, ConcurrentInsertDedupes) {
  // All threads try to insert the same 1000 logical states; exactly 1000
  // must win across all threads.
  constexpr int kStates = 1000;
  constexpr unsigned kThreads = 4;
  LockFreeHashSet<IntNode, IntTraits> set(256);
  std::vector<std::deque<IntNode>> nodes(kThreads);
  std::atomic<int> wins{0};
  std::vector<std::thread> team;
  for (unsigned t = 0; t < kThreads; ++t) {
    nodes[t].resize(kStates);
    team.emplace_back([&, t] {
      for (int i = 0; i < kStates; ++i) {
        nodes[t][i].fp = static_cast<std::uint64_t>(i) * 2654435761u;
        nodes[t][i].value = i;
        if (set.insert_if_absent(&nodes[t][i]).inserted)
          wins.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : team) th.join();
  EXPECT_EQ(wins.load(), kStates);
  EXPECT_EQ(set.counters.duplicates.load(),
            static_cast<std::uint64_t>(kStates) * (kThreads - 1));
}

// ---- MpmcQueue --------------------------------------------------------------------

TEST(MpmcQueueTest, FifoWhenSequential) {
  MpmcQueue q;
  for (std::uint64_t i = 1; i <= 5; ++i) q.enqueue(i);
  for (std::uint64_t i = 1; i <= 5; ++i) EXPECT_EQ(q.dequeue(), i);
  EXPECT_EQ(q.dequeue(), std::nullopt);
}

TEST(MpmcQueueStress, ProducersConsumersBalance) {
  MpmcQueue q;
  constexpr unsigned kProducers = 2, kConsumers = 2;
  constexpr std::uint64_t kPerProducer = 10000;
  std::atomic<std::uint64_t> consumed_sum{0}, consumed_count{0};
  std::atomic<unsigned> producers_done{0};

  std::vector<std::thread> team;
  for (unsigned p = 0; p < kProducers; ++p) {
    team.emplace_back([&] {
      for (std::uint64_t i = 1; i <= kPerProducer; ++i) q.enqueue(i);
      producers_done.fetch_add(1);
    });
  }
  for (unsigned c = 0; c < kConsumers; ++c) {
    team.emplace_back([&] {
      for (;;) {
        if (const auto v = q.dequeue()) {
          consumed_sum.fetch_add(*v, std::memory_order_relaxed);
          consumed_count.fetch_add(1, std::memory_order_relaxed);
        } else if (producers_done.load() == kProducers) {
          // Re-check after observing the producers done: an item published
          // between the failed dequeue and the load must not be dropped.
          if (const auto last = q.dequeue()) {
            consumed_sum.fetch_add(*last, std::memory_order_relaxed);
            consumed_count.fetch_add(1, std::memory_order_relaxed);
          } else {
            return;  // drained
          }
        } else {
          cpu_pause();
        }
      }
    });
  }
  for (auto& th : team) th.join();
  // Belt and braces: anything somehow left behind still counts.
  while (const auto v = q.dequeue()) {
    consumed_sum.fetch_add(*v);
    consumed_count.fetch_add(1);
  }
  EXPECT_EQ(consumed_count.load(), kProducers * kPerProducer);
  EXPECT_EQ(consumed_sum.load(),
            kProducers * (kPerProducer * (kPerProducer + 1) / 2));
}

// ---- Arena + accounting --------------------------------------------------------------

TEST(ArenaTest, AlignedAllocations) {
  Arena arena;
  for (std::size_t align : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    void* p = arena.allocate(17, align);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u) << align;
  }
}

TEST(ArenaTest, LargeAllocationGetsOwnChunk) {
  MemoryAccounting acct;
  Arena arena(&acct, /*chunk_bytes=*/1024);
  void* p = arena.allocate(10000);
  ASSERT_NE(p, nullptr);
  EXPECT_GE(acct.used(), 10000u);
}

TEST(ArenaTest, ReleaseAllReturnsAccounting) {
  MemoryAccounting acct;
  {
    Arena arena(&acct, 4096);
    arena.allocate(100);
    EXPECT_GT(acct.used(), 0u);
    arena.release_all();
    EXPECT_EQ(acct.used(), 0u);
    arena.allocate(100);  // usable again after release
    EXPECT_GT(acct.used(), 0u);
  }
  EXPECT_EQ(acct.used(), 0u);  // destructor releases too
}

TEST(ArenaTest, WritesDoNotOverlap) {
  Arena arena(nullptr, 256);
  std::vector<unsigned char*> ptrs;
  for (int i = 0; i < 100; ++i) {
    auto* p = static_cast<unsigned char*>(arena.allocate(40));
    std::memset(p, i, 40);
    ptrs.push_back(p);
  }
  for (int i = 0; i < 100; ++i)
    for (int j = 0; j < 40; ++j)
      ASSERT_EQ(ptrs[i][j], static_cast<unsigned char>(i));
}

// ---- MemoryManager ---------------------------------------------------------------------

TEST(MemoryManagerTest, PhaseTransitionsOnce) {
  MemoryManager mm(/*threshold=*/1000, /*workers=*/2);
  EXPECT_EQ(mm.phase(), MemoryPhase::kNormal);
  mm.accounting().add(500);
  EXPECT_EQ(mm.observe(), MemoryPhase::kNormal);
  mm.accounting().add(600);
  EXPECT_EQ(mm.observe(), MemoryPhase::kCompressing);
  EXPECT_FALSE(mm.all_acknowledged());
  mm.acknowledge(0);
  mm.acknowledge(1);
  EXPECT_TRUE(mm.all_acknowledged());
  mm.finish_compression();
  EXPECT_EQ(mm.phase(), MemoryPhase::kCompressed);
  // Once compressed, observe() never re-triggers.
  mm.accounting().add(1u << 20);
  EXPECT_EQ(mm.observe(), MemoryPhase::kCompressed);
}

TEST(MemoryManagerTest, ZeroThresholdDisablesCompression) {
  MemoryManager mm(0, 1);
  mm.accounting().add(1u << 30);
  EXPECT_EQ(mm.observe(), MemoryPhase::kNormal);
}

// ---- SpinBarrier ------------------------------------------------------------------------

TEST(SpinBarrierTest, RendezvousAndReuse) {
  constexpr unsigned kThreads = 4;
  SpinBarrier barrier(kThreads);
  std::atomic<int> phase_counter{0};
  std::vector<std::thread> team;
  for (unsigned t = 0; t < kThreads; ++t) {
    team.emplace_back([&] {
      for (int round = 0; round < 10; ++round) {
        phase_counter.fetch_add(1);
        barrier.wait();
        // After the barrier every thread must observe the full round.
        EXPECT_EQ(phase_counter.load() % kThreads, 0u);
        barrier.wait();
      }
    });
  }
  for (auto& th : team) th.join();
  EXPECT_EQ(phase_counter.load(), 10 * static_cast<int>(kThreads));
}

}  // namespace
}  // namespace sfa
