// Execution profiler (obs/profile): imbalance math on synthetic chunk
// records, top-k retention, sfa-profile/1 schema round-trip through the
// shared JSON parser, perf-counter fallback, and an 8-worker stress run
// asserting per-worker attribution matches the executor's dispatch counts.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>

#include "sfa/core/scan/executor.hpp"
#include "sfa/obs/json_parse.hpp"
#include "sfa/obs/profile/perf_counters.hpp"
#include "sfa/obs/profile/profile.hpp"
#include "sfa/obs/stats_export.hpp"
#include "sfa/support/timer.hpp"

namespace {

using namespace sfa;

// ---- snapshot math ---------------------------------------------------------

TEST(Profile, ImbalanceFactorOnSyntheticChunks) {
  auto& prof = obs::ExecutionProfiler::instance();
  prof.reset();
  // Worker 0 serves two fast chunks, worker 1 a fast and a slow one.
  prof.record_chunk(0, 0, 100, 10, 1);
  prof.record_chunk(0, 1, 100, 10, 1);
  prof.record_chunk(1, 2, 100, 10, 1);
  prof.record_chunk(1, 3, 500, 10, 1);
  const obs::ProfileSnapshot s = prof.snapshot();
  EXPECT_EQ(s.chunks, 4u);
  EXPECT_EQ(s.cycles, 800u);
  EXPECT_EQ(s.bytes, 40u);
  EXPECT_EQ(s.max_chunk_cycles, 500u);
  EXPECT_DOUBLE_EQ(s.mean_chunk_cycles(), 200.0);
  EXPECT_DOUBLE_EQ(s.imbalance_factor(), 2.5);
  // Critical path is the busiest worker (100 + 500 on worker 1).
  EXPECT_EQ(s.critical_path_cycles, 600u);
  EXPECT_DOUBLE_EQ(s.parallel_efficiency(), 800.0 / (600.0 * 2.0));
  ASSERT_EQ(s.workers.size(), 2u);
  EXPECT_EQ(s.workers[0].slot, 0u);
  EXPECT_EQ(s.workers[0].chunks, 2u);
  EXPECT_EQ(s.workers[0].engine_chunks[1], 2u);
  EXPECT_EQ(s.workers[1].cycles, 600u);
  // The slowest chunk is fully attributed.
  ASSERT_FALSE(s.top_chunks.empty());
  EXPECT_EQ(s.top_chunks[0].cycles, 500u);
  EXPECT_EQ(s.top_chunks[0].chunk, 3u);
  EXPECT_EQ(s.top_chunks[0].worker, 1u);
  EXPECT_EQ(s.top_chunks[0].engine, 1u);
}

TEST(Profile, EmptySnapshotHasNoDerivedValues) {
  auto& prof = obs::ExecutionProfiler::instance();
  prof.reset();
  const obs::ProfileSnapshot s = prof.snapshot();
  EXPECT_EQ(s.chunks, 0u);
  EXPECT_TRUE(s.workers.empty());
  EXPECT_TRUE(s.top_chunks.empty());
  EXPECT_DOUBLE_EQ(s.imbalance_factor(), 0.0);
  EXPECT_DOUBLE_EQ(s.parallel_efficiency(), 0.0);
}

TEST(Profile, TopKKeepsTheSlowestChunks) {
  auto& prof = obs::ExecutionProfiler::instance();
  prof.reset();
  for (unsigned c = 1; c <= 20; ++c)
    prof.record_chunk(0, c, c, 0, 0);  // cycles 1..20 in ascending order
  const obs::ProfileSnapshot s = prof.snapshot();
  ASSERT_EQ(s.top_chunks.size(),
            static_cast<std::size_t>(obs::kProfileTopChunks));
  for (unsigned i = 0; i < obs::kProfileTopChunks; ++i)
    EXPECT_EQ(s.top_chunks[i].cycles, 20u - i);  // slowest first: 20..13
}

TEST(Profile, OutOfRangeSlotAndEngineAreClamped) {
  auto& prof = obs::ExecutionProfiler::instance();
  prof.reset();
  prof.record_chunk(/*slot=*/9999, 0, 10, 1, /*engine_id=*/42);
  const obs::ProfileSnapshot s = prof.snapshot();
  ASSERT_EQ(s.workers.size(), 1u);
  EXPECT_EQ(s.workers[0].slot, obs::kProfileMaxWorkers - 1);
  EXPECT_EQ(s.workers[0].engine_chunks[obs::kProfileOtherEngine], 1u);
}

// ---- sfa-profile/1 schema round-trip ---------------------------------------

TEST(Profile, SchemaRoundTripsThroughSharedParser) {
  auto& prof = obs::ExecutionProfiler::instance();
  prof.reset();
  prof.record_chunk(0, 0, 300, 64, 1);
  prof.record_chunk(1, 1, 100, 64, 1);
  prof.record_chunk(obs::kProfileInlineSlot, 2, 50, 32, 4);

  obs::MatchRunInfo info;
  info.command = "match";
  info.seconds = 0.01;
  info.profile = true;
  std::ostringstream os;
  obs::write_match_stats_json(os, info, /*include_metrics=*/false);

  obs::JsonValue root;
  std::string error;
  ASSERT_TRUE(obs::parse_json(os.str(), root, error)) << error;
  const obs::JsonValue* profile = root.get("profile");
  ASSERT_NE(profile, nullptr);
  EXPECT_EQ(profile->string_or("schema", ""), "sfa-profile/1");
  EXPECT_DOUBLE_EQ(profile->number_or("chunks", 0), 3.0);
  EXPECT_DOUBLE_EQ(profile->number_or("total_work_cycles", 0), 450.0);
  EXPECT_DOUBLE_EQ(profile->number_or("imbalance_factor", 0), 2.0);
  const obs::JsonValue* workers = profile->get("workers");
  ASSERT_NE(workers, nullptr);
  ASSERT_TRUE(workers->is_array());
  ASSERT_EQ(workers->arr->size(), 3u);
  // The inline slot serializes as the string "inline", pool slots as ints.
  EXPECT_EQ(workers->arr->back().string_or("worker", ""), "inline");
  const obs::JsonValue* top = profile->get("top_chunks");
  ASSERT_NE(top, nullptr);
  ASSERT_TRUE(top->is_array());
  ASSERT_FALSE(top->arr->empty());
  EXPECT_EQ(top->arr->front().string_or("engine", ""), "eager");
  EXPECT_DOUBLE_EQ(top->arr->front().number_or("cycles", 0), 300.0);
}

// ---- executor integration --------------------------------------------------

TEST(Profile, ExecutorAttributionMatchesPoolDispatches) {
  // A private pool, so default_executor() growth from other tests cannot
  // skew the team size: 8 workers, 8 chunks -> the stripe-bound pool runs
  // exactly one chunk per worker per dispatch.
  scan::PooledExecutor exec(8);
  auto& prof = obs::ExecutionProfiler::instance();
  prof.reset();
  constexpr unsigned kRounds = 50;
  constexpr unsigned kChunks = 8;
  std::atomic<unsigned> ran{0};
  const WallTimer timer;
  for (unsigned r = 0; r < kRounds; ++r) {
    exec.for_chunks(kChunks, [&](unsigned) {
      obs::annotate_profile_chunk(1, 128);
      ran.fetch_add(1, std::memory_order_relaxed);
    });
  }
  const double wall = timer.seconds();
  EXPECT_EQ(ran.load(), kRounds * kChunks);

  const obs::ProfileSnapshot s = prof.snapshot();
  const scan::ExecutorStats stats = exec.stats();
  EXPECT_EQ(stats.pool_dispatches, kRounds);
  EXPECT_EQ(s.chunks, std::uint64_t{kRounds} * kChunks);
  EXPECT_EQ(s.bytes, std::uint64_t{kRounds} * kChunks * 128);
  ASSERT_EQ(s.workers.size(), std::size_t{kChunks});
  for (const obs::ProfileWorker& w : s.workers) {
    EXPECT_FALSE(w.inline_slot);
    // Stripe-bound dispatch: worker w serves chunk w of every round.
    EXPECT_EQ(w.chunks, std::uint64_t{kRounds});
    EXPECT_EQ(w.engine_chunks[1], std::uint64_t{kRounds});
  }
  // Utilization invariant: summed busy time cannot exceed wall x workers
  // (slack for timer granularity; only checkable with a calibrated TSC).
  const double hz = tsc_hz();
  if (hz > 0.0 && wall > 0.0) {
    const double busy = static_cast<double>(s.cycles) / hz;
    EXPECT_LE(busy, wall * kChunks * 1.5 + 0.1);
  }
}

TEST(Profile, InlineChunksLandOnTheInlineSlot) {
  auto& prof = obs::ExecutionProfiler::instance();
  prof.reset();
  scan::inline_executor().for_chunks(3, [&](unsigned) {
    obs::annotate_profile_chunk(0, 64);
  });
  const obs::ProfileSnapshot s = prof.snapshot();
  ASSERT_EQ(s.workers.size(), 1u);
  EXPECT_TRUE(s.workers[0].inline_slot);
  EXPECT_EQ(s.workers[0].chunks, 3u);
  EXPECT_EQ(s.workers[0].engine_chunks[0], 3u);
  EXPECT_EQ(s.bytes, 3u * 64u);
}

TEST(Profile, UnannotatedChunksCountAsOtherEngine) {
  auto& prof = obs::ExecutionProfiler::instance();
  prof.reset();
  scan::inline_executor().for_chunks(2, [](unsigned) {});
  const obs::ProfileSnapshot s = prof.snapshot();
  ASSERT_EQ(s.workers.size(), 1u);
  EXPECT_EQ(s.workers[0].engine_chunks[obs::kProfileOtherEngine], 2u);
  EXPECT_EQ(s.bytes, 0u);
}

// ---- perf counters ---------------------------------------------------------

TEST(PerfCounters, ScopeFallsBackGracefully) {
  obs::PerfCounterScope scope("test-phase");
  const obs::PerfCounterValues v1 = scope.stop();
  const obs::PerfCounterValues v2 = scope.stop();  // idempotent
  EXPECT_EQ(v1.available, v2.available);
  EXPECT_EQ(v1.cycles, v2.cycles);
  if (!v1.cycles_ok) EXPECT_EQ(v1.cycles, 0u);
  if (!obs::PerfCounterScope::compiled_in()) EXPECT_FALSE(v1.available);
  EXPECT_GE(v1.ipc(), 0.0);
}

TEST(PerfCounters, UnavailableValuesAreNotExported) {
  obs::PerfCounterValues v;  // all defaults: nothing granted
  EXPECT_FALSE(v.available);
  EXPECT_DOUBLE_EQ(v.ipc(), 0.0);
  obs::MatchRunInfo info;
  info.command = "match";
  info.perf = v;
  std::ostringstream os;
  obs::write_match_stats_json(os, info, /*include_metrics=*/false);
  EXPECT_EQ(os.str().find("perf_counters"), std::string::npos);
}

}  // namespace
