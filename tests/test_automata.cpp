// Automata substrate tests: alphabets, regex parsing, Thompson NFA, subset
// construction, Hopcroft minimization, Grail I/O, equivalence checking.
#include <gtest/gtest.h>

#include "sfa/automata/determinize.hpp"
#include "sfa/automata/minimize.hpp"
#include "sfa/automata/nfa.hpp"
#include "sfa/automata/ops.hpp"
#include "sfa/automata/regex_parser.hpp"
#include "sfa/support/rng.hpp"

namespace sfa {
namespace {

const Alphabet& kDna = Alphabet::dna();

std::vector<Symbol> enc(const char* s) { return kDna.encode(s); }

Dfa compile_exact(const char* pattern, const Alphabet& a = kDna) {
  CompileOptions opt;
  opt.anywhere = false;
  return compile_pattern(pattern, a, opt);
}

// ---- Alphabet -----------------------------------------------------------------

TEST(AlphabetTest, AminoHas20Symbols) {
  EXPECT_EQ(Alphabet::amino().size(), 20u);
  EXPECT_TRUE(Alphabet::amino().contains('W'));
  EXPECT_FALSE(Alphabet::amino().contains('B'));
  EXPECT_FALSE(Alphabet::amino().contains('Z'));
  EXPECT_FALSE(Alphabet::amino().contains('X'));
}

TEST(AlphabetTest, EncodeDecodeRoundtrip) {
  const auto symbols = Alphabet::amino().encode("MGWRGD");
  EXPECT_EQ(Alphabet::amino().decode(symbols), "MGWRGD");
}

TEST(AlphabetTest, EncodeRejectsForeignCharacters) {
  EXPECT_THROW(kDna.encode("ACGU"), std::invalid_argument);
}

TEST(AlphabetTest, DuplicateCharsCollapse) {
  const Alphabet a("AABBA");
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(a.symbol_of('A'), 0);
  EXPECT_EQ(a.symbol_of('B'), 1);
}

TEST(AlphabetTest, EmptyAlphabetRejected) {
  EXPECT_THROW(Alphabet(""), std::invalid_argument);
}

// ---- CharClass ------------------------------------------------------------------

TEST(CharClassTest, NegationWithinAlphabet) {
  CharClass c = CharClass::single(2);
  const CharClass neg = c.negated(4);
  EXPECT_FALSE(neg.test(2));
  EXPECT_TRUE(neg.test(0));
  EXPECT_TRUE(neg.test(3));
  EXPECT_EQ(neg.count(), 3u);
}

TEST(CharClassTest, SetOperations) {
  CharClass a = CharClass::single(0) | CharClass::single(1);
  CharClass b = CharClass::single(1) | CharClass::single(2);
  EXPECT_EQ((a & b).count(), 1u);
  EXPECT_EQ((a | b).count(), 3u);
  EXPECT_TRUE((a & b).test(1));
}

// ---- Regex parser -----------------------------------------------------------------

TEST(RegexParser, LiteralAndConcat) {
  const Regex r = parse_regex("ACGT", kDna);
  EXPECT_EQ(r.kind, RegexKind::kConcat);
  EXPECT_EQ(r.children.size(), 4u);
}

TEST(RegexParser, Alternation) {
  const Dfa dfa = compile_exact("AC|GT");
  EXPECT_TRUE(dfa.accepts(enc("AC")));
  EXPECT_TRUE(dfa.accepts(enc("GT")));
  EXPECT_FALSE(dfa.accepts(enc("AG")));
  EXPECT_FALSE(dfa.accepts(enc("ACGT")));
}

TEST(RegexParser, StarPlusOpt) {
  const Dfa star = compile_exact("A*");
  EXPECT_TRUE(star.accepts(enc("")));
  EXPECT_TRUE(star.accepts(enc("AAAA")));
  EXPECT_FALSE(star.accepts(enc("AC")));

  const Dfa plus = compile_exact("A+");
  EXPECT_FALSE(plus.accepts(enc("")));
  EXPECT_TRUE(plus.accepts(enc("A")));

  const Dfa opt = compile_exact("CA?");
  EXPECT_TRUE(opt.accepts(enc("C")));
  EXPECT_TRUE(opt.accepts(enc("CA")));
  EXPECT_FALSE(opt.accepts(enc("CAA")));
}

TEST(RegexParser, BoundedRepeats) {
  const Dfa r = compile_exact("A{2,4}");
  EXPECT_FALSE(r.accepts(enc("A")));
  EXPECT_TRUE(r.accepts(enc("AA")));
  EXPECT_TRUE(r.accepts(enc("AAAA")));
  EXPECT_FALSE(r.accepts(enc("AAAAA")));

  const Dfa exact = compile_exact("(AC){2}");
  EXPECT_TRUE(exact.accepts(enc("ACAC")));
  EXPECT_FALSE(exact.accepts(enc("AC")));

  const Dfa open = compile_exact("A{3,}");
  EXPECT_FALSE(open.accepts(enc("AA")));
  EXPECT_TRUE(open.accepts(enc("AAAAAAA")));
}

TEST(RegexParser, CharClassesAndRanges) {
  const Dfa r = compile_exact("[AC]G");
  EXPECT_TRUE(r.accepts(enc("AG")));
  EXPECT_TRUE(r.accepts(enc("CG")));
  EXPECT_FALSE(r.accepts(enc("GG")));

  const Dfa neg = compile_exact("[^A]");
  EXPECT_FALSE(neg.accepts(enc("A")));
  EXPECT_TRUE(neg.accepts(enc("T")));

  const Dfa range = compile_exact("[A-G]", Alphabet::amino());
  EXPECT_TRUE(range.accepts(Alphabet::amino().encode("D")));
  EXPECT_FALSE(range.accepts(Alphabet::amino().encode("K")));
}

TEST(RegexParser, DotMatchesAnySymbol) {
  const Dfa r = compile_exact("A.T");
  for (const char* s : {"AAT", "ACT", "AGT", "ATT"})
    EXPECT_TRUE(r.accepts(enc(s))) << s;
  EXPECT_FALSE(r.accepts(enc("AT")));
}

TEST(RegexParser, ErrorsCarryPosition) {
  try {
    parse_regex("AC(GT", kDna);
    FAIL() << "expected RegexParseError";
  } catch (const RegexParseError& e) {
    EXPECT_GE(e.position, 4u);
  }
  EXPECT_THROW(parse_regex("A{4,2}", kDna), RegexParseError);
  EXPECT_THROW(parse_regex("[Z]", kDna), RegexParseError);
  EXPECT_THROW(parse_regex("*A", kDna), RegexParseError);
  EXPECT_THROW(parse_regex("A[", kDna), RegexParseError);
  EXPECT_THROW(parse_regex("[T-A]", kDna), RegexParseError);
}

TEST(RegexParser, RoundtripThroughToString) {
  for (const char* pat : {"ACGT", "A|C", "(AC)*T", "A{2,4}[CG]+", "[^T]G?"}) {
    const Regex r = parse_regex(pat, kDna);
    const std::string printed = regex_to_string(r, kDna);
    // Reparse of the printed form must be language-equivalent.
    const Regex r2 = parse_regex(printed, kDna);
    CompileOptions opt;
    opt.anywhere = false;
    EXPECT_TRUE(dfa_equivalent(compile_to_dfa(r, kDna.size(), opt),
                               compile_to_dfa(r2, kDna.size(), opt)))
        << pat << " -> " << printed;
  }
}

// ---- NFA ---------------------------------------------------------------------------

TEST(NfaTest, ThompsonSimulationAgreesWithDfa) {
  Xoshiro256 rng(23);
  for (const char* pat : {"A(C|G)*T", "(A|C){2,3}G", "[AC]+[GT]+"}) {
    const Regex r = parse_regex(pat, kDna);
    const Nfa nfa = Nfa::from_regex(r, kDna.size());
    const Dfa dfa = compile_exact(pat);
    for (int i = 0; i < 200; ++i) {
      std::vector<Symbol> input(rng.below(12));
      for (auto& s : input) s = static_cast<Symbol>(rng.below(4));
      EXPECT_EQ(nfa.accepts(input), dfa.accepts(input)) << pat;
    }
  }
}

TEST(NfaTest, EpsClosureIsSortedUnique) {
  const Regex r = parse_regex("(A|C|G)*", kDna);
  const Nfa nfa = Nfa::from_regex(r, kDna.size());
  const auto closure = nfa.eps_closure({nfa.start()});
  EXPECT_TRUE(std::is_sorted(closure.begin(), closure.end()));
  EXPECT_EQ(std::adjacent_find(closure.begin(), closure.end()), closure.end());
}

// ---- Determinization & minimization ----------------------------------------------

TEST(DeterminizeTest, ProducesCompleteDfa) {
  const Regex r = parse_regex("AC|AG", kDna);
  const Dfa dfa = determinize(Nfa::from_regex(r, kDna.size()));
  EXPECT_TRUE(dfa.complete());
}

TEST(MinimizeTest, ShrinksRedundantStates) {
  // (A|C)(A|C) written redundantly: determinization produces separate paths
  // that minimization must merge.
  const Dfa big = compile_exact("AA|AC|CA|CC");
  const Dfa small = compile_exact("[AC][AC]");
  EXPECT_TRUE(dfa_equivalent(big, small));
  EXPECT_EQ(big.size(), small.size());  // both minimal, canonical numbering
}

TEST(MinimizeTest, CanonicalNumbering) {
  // Two equivalent regexes minimize to structurally identical DFAs.
  const Dfa a = compile_exact("(AC)*");
  const Dfa b = compile_exact("(AC)*()");
  ASSERT_EQ(a.size(), b.size());
  for (Dfa::StateId q = 0; q < a.size(); ++q) {
    EXPECT_EQ(a.accepting(q), b.accepting(q));
    for (unsigned s = 0; s < 4; ++s)
      EXPECT_EQ(a.transition(q, static_cast<Symbol>(s)),
                b.transition(q, static_cast<Symbol>(s)));
  }
}

TEST(MinimizeTest, RequiresCompleteDfa) {
  Dfa partial(4);
  partial.add_state(true);
  EXPECT_THROW(minimize(partial), std::invalid_argument);
}

TEST(MinimizeTest, MinimalityOnRandomRegexes) {
  // Property: minimize(minimize(d)) == minimize(d) and sizes never grow.
  for (const char* pat : {"A(C|G)T*", "(AT|TA){1,2}", "[ACG]*T"}) {
    const Dfa d = compile_exact(pat);
    const Dfa m = minimize(d);
    EXPECT_EQ(d.size(), m.size()) << "compile_exact already minimizes";
    EXPECT_TRUE(dfa_equivalent(d, m));
  }
}

TEST(TrimTest, DropsUnreachableStates) {
  Dfa d(2);
  const auto a = d.add_state(false);
  const auto b = d.add_state(true);
  const auto orphan = d.add_state(true);
  d.set_start(a);
  for (Dfa::StateId q : {a, b, orphan})
    for (unsigned s = 0; s < 2; ++s)
      d.set_transition(q, static_cast<Symbol>(s), b);
  const Dfa trimmed = trim_unreachable(d);
  EXPECT_EQ(trimmed.size(), 2u);
  EXPECT_TRUE(dfa_equivalent(d, trimmed));
}

// ---- Match-anywhere closure ---------------------------------------------------------

TEST(MatchAnywhere, FindsSubstringEverywhere) {
  const Dfa dfa = compile_pattern("GT", kDna);  // anywhere by default
  EXPECT_TRUE(dfa.accepts(enc("GT")));
  EXPECT_TRUE(dfa.accepts(enc("AAGTAA")));
  EXPECT_TRUE(dfa.accepts(enc("GTGTGT")));
  EXPECT_FALSE(dfa.accepts(enc("G")));
  EXPECT_FALSE(dfa.accepts(enc("TTTTG")));
}

TEST(MatchAnywhere, AcceptingStatesAbsorb) {
  const Dfa dfa = compile_pattern("GT", kDna);
  // Once matched, always accepting.
  std::vector<Symbol> input = enc("GTAAAA");
  EXPECT_TRUE(dfa.accepts(input));
}

TEST(MatchAnywhere, CountAcceptingPrefixes) {
  const Dfa dfa = compile_pattern("GT", kDna);
  const auto input = enc("GTAAGT");
  // Accepting from position 2 onwards (absorbing): prefixes of length 2..6.
  EXPECT_EQ(dfa.count_accepting_prefixes(input.data(), input.size()), 5u);
}

// ---- DFA equivalence ------------------------------------------------------------------

TEST(DfaEquivalence, DetectsDifference) {
  EXPECT_FALSE(dfa_equivalent(compile_exact("AC"), compile_exact("AG")));
  EXPECT_TRUE(dfa_equivalent(compile_exact("A[CG]"), compile_exact("AC|AG")));
}

TEST(DfaEquivalence, AlphabetMismatchThrows) {
  EXPECT_THROW(
      dfa_equivalent(compile_exact("AC"),
                     compile_exact("AC", Alphabet::amino())),
      std::invalid_argument);
}

// ---- Grail+ I/O ---------------------------------------------------------------------

TEST(GrailIo, RoundtripPreservesLanguage) {
  const Dfa dfa = compile_pattern("AC?G", kDna);
  const std::string text = dfa.to_grail(kDna);
  const Dfa back = Dfa::from_grail(text, kDna);
  EXPECT_TRUE(dfa_equivalent(dfa, back));
}

TEST(GrailIo, ParsesHandwrittenAutomaton) {
  // Two states over DNA; accepts strings ending in A.
  const std::string text =
      "(START) |- 0\n"
      "0 A 1\n0 C 0\n0 G 0\n0 T 0\n"
      "1 A 1\n1 C 0\n1 G 0\n1 T 0\n"
      "1 -| (FINAL)\n";
  const Dfa dfa = Dfa::from_grail(text, kDna);
  EXPECT_EQ(dfa.size(), 2u);
  EXPECT_TRUE(dfa.complete());
  EXPECT_TRUE(dfa.accepts(enc("CGA")));
  EXPECT_FALSE(dfa.accepts(enc("AG")));
}

TEST(GrailIo, RejectsMalformedInput) {
  EXPECT_THROW(Dfa::from_grail("0 A 1\n", kDna), std::runtime_error);
  EXPECT_THROW(Dfa::from_grail("(START) |- 0\n0 Z 1\n", kDna),
               std::runtime_error);
  EXPECT_THROW(
      Dfa::from_grail("(START) |- 0\n0 A 1\n0 A 2\n", kDna),
      std::runtime_error);
}

TEST(GrailIo, NondeterministicInputDeterminizes) {
  // Two start states, duplicated transitions on one (state, symbol):
  // accepts strings containing "AC" (from start 0) or starting with "G"
  // (from start 1), NFA-style.
  const std::string text =
      "(START) |- 0\n"
      "(START) |- 3\n"
      "0 A 0\n0 C 0\n0 G 0\n0 T 0\n"
      "0 A 1\n"
      "1 C 2\n"
      "2 A 2\n2 C 2\n2 G 2\n2 T 2\n"
      "3 G 2\n"
      "2 -| (FINAL)\n";
  const Dfa dfa = dfa_from_grail_nfa(text, kDna);
  EXPECT_TRUE(dfa.complete());
  EXPECT_TRUE(dfa.accepts(enc("TTACTT")));  // contains AC
  EXPECT_TRUE(dfa.accepts(enc("GT")));      // starts with G (start 3)
  EXPECT_FALSE(dfa.accepts(enc("TTTT")));
  EXPECT_FALSE(dfa.accepts(enc("CA")));
}

TEST(GrailIo, NfaReaderAgreesWithDfaReaderOnDeterministicInput) {
  const Dfa original = compile_pattern("AC?G", kDna);
  const std::string text = original.to_grail(kDna);
  const Dfa via_nfa = dfa_from_grail_nfa(text, kDna);
  EXPECT_TRUE(dfa_equivalent(original, via_nfa));
}

TEST(GrailIo, NfaReaderRejectsMalformed) {
  EXPECT_THROW(dfa_from_grail_nfa("0 A 1\n", kDna), std::runtime_error);
  EXPECT_THROW(dfa_from_grail_nfa("(START) |- 0\n0 Z 1\n", kDna),
               std::runtime_error);
}

// ---- Dfa utilities -----------------------------------------------------------------

TEST(DfaUtil, FindSink) {
  Dfa d(2);
  const auto live = d.add_state(true);
  const auto sink = d.add_state(false);
  d.set_start(live);
  for (unsigned s = 0; s < 2; ++s) {
    d.set_transition(live, static_cast<Symbol>(s), sink);
    d.set_transition(sink, static_cast<Symbol>(s), sink);
  }
  EXPECT_EQ(d.find_sink(), sink);
}

TEST(DfaUtil, NoSinkReturnsSize) {
  const Dfa d = compile_pattern("GT", kDna);
  // Match-anywhere DFAs have no non-accepting sink (they absorb on accept).
  EXPECT_EQ(d.find_sink(), d.size());
}

}  // namespace
}  // namespace sfa
