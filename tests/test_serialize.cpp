// SFA binary serialization tests: roundtrips for every table layout ×
// mapping mode, the seed-era dense golden fixture, corrupt-stream
// rejection, and behavioural equality after reload.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "sfa/core/build.hpp"
#include "sfa/core/equivalence.hpp"
#include "sfa/core/match.hpp"
#include "sfa/core/serialize.hpp"
#include "sfa/core/table/transition_table.hpp"
#include "sfa/prosite/prosite_parser.hpp"
#include "sfa/support/rng.hpp"

namespace sfa {
namespace {

void expect_same_automaton(const Sfa& a, const Sfa& b) {
  ASSERT_EQ(a.num_states(), b.num_states());
  ASSERT_EQ(a.num_symbols(), b.num_symbols());
  ASSERT_EQ(a.dfa_states(), b.dfa_states());
  EXPECT_EQ(a.start(), b.start());
  EXPECT_EQ(a.dfa_start(), b.dfa_start());
  EXPECT_EQ(a.cell_width(), b.cell_width());
  for (Sfa::StateId s = 0; s < a.num_states(); ++s) {
    EXPECT_EQ(a.accepting(s), b.accepting(s));
    for (unsigned sym = 0; sym < a.num_symbols(); ++sym)
      ASSERT_EQ(a.transition(s, static_cast<Symbol>(sym)),
                b.transition(s, static_cast<Symbol>(sym)));
  }
  ASSERT_EQ(a.has_mappings(), b.has_mappings());
  if (a.has_mappings()) {
    std::vector<std::uint32_t> ma, mb;
    for (Sfa::StateId s = 0; s < a.num_states(); ++s) {
      a.mapping(s, ma);
      b.mapping(s, mb);
      ASSERT_EQ(ma, mb) << "state " << s;
    }
  }
}

TEST(Serialize, RawMappingsRoundtrip) {
  const Dfa dfa = compile_prosite("[AG]-x(4)-G-K-[ST].");
  const Sfa sfa = build_sfa_transposed(dfa);
  std::stringstream buf;
  save_sfa(sfa, buf);
  const Sfa back = load_sfa(buf);
  expect_same_automaton(sfa, back);
  EXPECT_TRUE(verify_sfa(back, dfa, {.random_inputs = 30}).ok);
}

TEST(Serialize, NoMappingsRoundtrip) {
  const Dfa dfa = compile_prosite("R-G-D.");
  BuildOptions opt;
  opt.keep_mappings = false;
  const Sfa sfa = build_sfa_transposed(dfa, opt);
  std::stringstream buf;
  save_sfa(sfa, buf);
  const Sfa back = load_sfa(buf);
  expect_same_automaton(sfa, back);
  EXPECT_FALSE(back.has_mappings());
}

TEST(Serialize, CompressedMappingsRoundtrip) {
  const Dfa dfa = compile_prosite("C-x-[DN]-x(4)-[FY]-x-C-x-C.");
  BuildOptions opt;
  opt.num_threads = 2;
  opt.memory_threshold_bytes = 1;  // force the compression path
  const Sfa sfa = build_sfa_parallel(dfa, opt);
  ASSERT_TRUE(sfa.mappings_compressed());
  std::stringstream buf;
  save_sfa(sfa, buf);
  const Sfa back = load_sfa(buf);
  EXPECT_TRUE(back.mappings_compressed());
  expect_same_automaton(sfa, back);
}

TEST(Serialize, ReloadedSfaMatches) {
  const Dfa dfa = compile_prosite("N-{P}-[ST]-{P}.");
  const Sfa sfa = build_sfa_transposed(dfa);
  std::stringstream buf;
  save_sfa(sfa, buf);
  const Sfa back = load_sfa(buf);

  Xoshiro256 rng(5);
  std::vector<Symbol> text(4096);
  for (auto& s : text) s = static_cast<Symbol>(rng.below(20));
  EXPECT_EQ(match_sfa_parallel(back, text, 4).accepted,
            match_sequential(dfa, text).accepted);
}

TEST(Serialize, FileRoundtrip) {
  const Dfa dfa = compile_prosite("R-G-D.");
  const Sfa sfa = build_sfa_transposed(dfa);
  const std::string path = ::testing::TempDir() + "/rgd.sfa";
  save_sfa_file(sfa, path);
  const Sfa back = load_sfa_file(path);
  expect_same_automaton(sfa, back);
  std::remove(path.c_str());
}

TEST(Serialize, LayoutTimesMappingModeMatrix) {
  // Every table layout × every mapping mode must roundtrip: the layout is
  // preserved through the SFA2 container (dense stays in the SFA1 format),
  // the resident footprint is restored exactly, and the reloaded automaton
  // is cell-for-cell the same function.
  using table::TableLayout;
  struct MappingMode {
    const char* name;
    Sfa (*build)();
  };
  const MappingMode modes[] = {
      {"raw",
       [] {
         return build_sfa_transposed(compile_prosite("[AG]-x(4)-G-K-[ST]."));
       }},
      {"compressed",
       [] {
         BuildOptions opt;
         opt.num_threads = 2;
         opt.memory_threshold_bytes = 1;  // force the compression path
         return build_sfa_parallel(compile_prosite("[AG]-x(4)-G-K-[ST]."),
                                   opt);
       }},
      {"none",
       [] {
         BuildOptions opt;
         opt.keep_mappings = false;
         return build_sfa_transposed(compile_prosite("[AG]-x(4)-G-K-[ST]."),
                                     opt);
       }},
  };
  for (const MappingMode& mode : modes) {
    const Sfa dense = mode.build();
    for (const TableLayout layout :
         {TableLayout::kDense, TableLayout::kRowDedup, TableLayout::kD2fa}) {
      SCOPED_TRACE(std::string(mode.name) + " x " +
                   table::layout_name(layout));
      Sfa sfa = dense;
      sfa.convert_table_layout(layout);
      std::stringstream buf;
      save_sfa(sfa, buf);
      const Sfa back = load_sfa(buf);
      EXPECT_EQ(back.table_layout(), layout);
      EXPECT_EQ(back.table_bytes(), sfa.table_bytes());
      EXPECT_EQ(back.table().rows_unique(), sfa.table().rows_unique());
      EXPECT_EQ(back.table().max_chase_depth(),
                sfa.table().max_chase_depth());
      expect_same_automaton(sfa, back);
    }
  }
}

TEST(Serialize, DenseFormatIsLayoutIndependent) {
  // A dense SFA saves in the original SFA1 container byte-for-byte — a
  // dense save never acquires the SFA2 layout tag, so seed-era readers
  // still load files produced by a dense-configured build.
  const Dfa dfa = compile_prosite("R-G-D.");
  const Sfa sfa = build_sfa_transposed(dfa);
  std::stringstream buf;
  save_sfa(sfa, buf);
  EXPECT_EQ(buf.str().substr(0, 4), "SFA1");

  Sfa d2fa = sfa;
  d2fa.convert_table_layout(table::TableLayout::kD2fa);
  std::stringstream buf2;
  save_sfa(d2fa, buf2);
  EXPECT_EQ(buf2.str().substr(0, 4), "SFA2");

  // Converting back to dense before saving restores the SFA1 bytes exactly.
  d2fa.convert_table_layout(table::TableLayout::kDense);
  std::stringstream buf3;
  save_sfa(d2fa, buf3);
  EXPECT_EQ(buf3.str(), buf.str());
}

TEST(Serialize, SeedEraGoldenFixtureLoads) {
  // tests/data/golden_seed_dense.sfa was written by the PRE-seam serializer
  // (dense δ-table, raw mappings, pattern "C-x(2)-[DE]."). It must keep
  // loading unchanged — the dense format is frozen.
  const std::string path = std::string(SFA_TEST_DATA_DIR) +
                           "/golden_seed_dense.sfa";
  std::ifstream probe(path, std::ios::binary);
  ASSERT_TRUE(probe.good()) << "missing fixture " << path;

  const Sfa golden = load_sfa_file(path);
  EXPECT_EQ(golden.table_layout(), table::TableLayout::kDense);
  EXPECT_EQ(golden.num_states(), 78u);
  EXPECT_EQ(golden.dfa_states(), 9u);
  EXPECT_EQ(golden.num_symbols(), 20u);
  ASSERT_TRUE(golden.has_mappings());

  // The current builder still produces the exact same automaton AND the
  // current serializer still produces the exact same bytes.
  const Dfa dfa = compile_prosite("C-x(2)-[DE].");
  const Sfa rebuilt = build_sfa_transposed(dfa);
  expect_same_automaton(golden, rebuilt);
  std::stringstream buf;
  save_sfa(rebuilt, buf);
  std::ifstream in(path, std::ios::binary);
  std::stringstream disk;
  disk << in.rdbuf();
  EXPECT_EQ(buf.str(), disk.str()) << "dense serialization drifted from the "
                                      "seed-era golden fixture";
}

TEST(Serialize, RejectsCorruptStreams) {
  const Dfa dfa = compile_prosite("R-G-D.");
  const Sfa sfa = build_sfa_transposed(dfa);
  std::stringstream buf;
  save_sfa(sfa, buf);
  const std::string good = buf.str();

  // Bad magic.
  {
    std::string bad = good;
    bad[0] = 'X';
    std::istringstream in(bad);
    EXPECT_THROW(load_sfa(in), std::runtime_error);
  }
  // Truncations at every interesting boundary.
  for (std::size_t cut : {std::size_t{3}, std::size_t{8}, std::size_t{20}, good.size() / 2, good.size() - 1}) {
    std::istringstream in(good.substr(0, cut));
    EXPECT_THROW(load_sfa(in), std::runtime_error) << "cut " << cut;
  }
  // Out-of-range transition: delta entries start after the header and the
  // two acceptance arrays; smash one with 0xFF.
  {
    std::string bad = good;
    const std::size_t delta_off = 4 + 2 + 16 + sfa.dfa_states() + sfa.num_states();
    bad[delta_off] = '\xFF';
    bad[delta_off + 1] = '\xFF';
    bad[delta_off + 2] = '\xFF';
    bad[delta_off + 3] = '\xFF';
    std::istringstream in(bad);
    EXPECT_THROW(load_sfa(in), std::runtime_error);
  }
  EXPECT_THROW(load_sfa_file("/nonexistent/path/x.sfa"), std::runtime_error);
}

}  // namespace
}  // namespace sfa
