// SFA binary serialization tests: roundtrips for every mapping mode,
// corrupt-stream rejection, and behavioural equality after reload.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "sfa/core/build.hpp"
#include "sfa/core/equivalence.hpp"
#include "sfa/core/match.hpp"
#include "sfa/core/serialize.hpp"
#include "sfa/prosite/prosite_parser.hpp"
#include "sfa/support/rng.hpp"

namespace sfa {
namespace {

void expect_same_automaton(const Sfa& a, const Sfa& b) {
  ASSERT_EQ(a.num_states(), b.num_states());
  ASSERT_EQ(a.num_symbols(), b.num_symbols());
  ASSERT_EQ(a.dfa_states(), b.dfa_states());
  EXPECT_EQ(a.start(), b.start());
  EXPECT_EQ(a.dfa_start(), b.dfa_start());
  EXPECT_EQ(a.cell_width(), b.cell_width());
  for (Sfa::StateId s = 0; s < a.num_states(); ++s) {
    EXPECT_EQ(a.accepting(s), b.accepting(s));
    for (unsigned sym = 0; sym < a.num_symbols(); ++sym)
      ASSERT_EQ(a.transition(s, static_cast<Symbol>(sym)),
                b.transition(s, static_cast<Symbol>(sym)));
  }
  ASSERT_EQ(a.has_mappings(), b.has_mappings());
  if (a.has_mappings()) {
    std::vector<std::uint32_t> ma, mb;
    for (Sfa::StateId s = 0; s < a.num_states(); ++s) {
      a.mapping(s, ma);
      b.mapping(s, mb);
      ASSERT_EQ(ma, mb) << "state " << s;
    }
  }
}

TEST(Serialize, RawMappingsRoundtrip) {
  const Dfa dfa = compile_prosite("[AG]-x(4)-G-K-[ST].");
  const Sfa sfa = build_sfa_transposed(dfa);
  std::stringstream buf;
  save_sfa(sfa, buf);
  const Sfa back = load_sfa(buf);
  expect_same_automaton(sfa, back);
  EXPECT_TRUE(verify_sfa(back, dfa, {.random_inputs = 30}).ok);
}

TEST(Serialize, NoMappingsRoundtrip) {
  const Dfa dfa = compile_prosite("R-G-D.");
  BuildOptions opt;
  opt.keep_mappings = false;
  const Sfa sfa = build_sfa_transposed(dfa, opt);
  std::stringstream buf;
  save_sfa(sfa, buf);
  const Sfa back = load_sfa(buf);
  expect_same_automaton(sfa, back);
  EXPECT_FALSE(back.has_mappings());
}

TEST(Serialize, CompressedMappingsRoundtrip) {
  const Dfa dfa = compile_prosite("C-x-[DN]-x(4)-[FY]-x-C-x-C.");
  BuildOptions opt;
  opt.num_threads = 2;
  opt.memory_threshold_bytes = 1;  // force the compression path
  const Sfa sfa = build_sfa_parallel(dfa, opt);
  ASSERT_TRUE(sfa.mappings_compressed());
  std::stringstream buf;
  save_sfa(sfa, buf);
  const Sfa back = load_sfa(buf);
  EXPECT_TRUE(back.mappings_compressed());
  expect_same_automaton(sfa, back);
}

TEST(Serialize, ReloadedSfaMatches) {
  const Dfa dfa = compile_prosite("N-{P}-[ST]-{P}.");
  const Sfa sfa = build_sfa_transposed(dfa);
  std::stringstream buf;
  save_sfa(sfa, buf);
  const Sfa back = load_sfa(buf);

  Xoshiro256 rng(5);
  std::vector<Symbol> text(4096);
  for (auto& s : text) s = static_cast<Symbol>(rng.below(20));
  EXPECT_EQ(match_sfa_parallel(back, text, 4).accepted,
            match_sequential(dfa, text).accepted);
}

TEST(Serialize, FileRoundtrip) {
  const Dfa dfa = compile_prosite("R-G-D.");
  const Sfa sfa = build_sfa_transposed(dfa);
  const std::string path = ::testing::TempDir() + "/rgd.sfa";
  save_sfa_file(sfa, path);
  const Sfa back = load_sfa_file(path);
  expect_same_automaton(sfa, back);
  std::remove(path.c_str());
}

TEST(Serialize, RejectsCorruptStreams) {
  const Dfa dfa = compile_prosite("R-G-D.");
  const Sfa sfa = build_sfa_transposed(dfa);
  std::stringstream buf;
  save_sfa(sfa, buf);
  const std::string good = buf.str();

  // Bad magic.
  {
    std::string bad = good;
    bad[0] = 'X';
    std::istringstream in(bad);
    EXPECT_THROW(load_sfa(in), std::runtime_error);
  }
  // Truncations at every interesting boundary.
  for (std::size_t cut : {std::size_t{3}, std::size_t{8}, std::size_t{20}, good.size() / 2, good.size() - 1}) {
    std::istringstream in(good.substr(0, cut));
    EXPECT_THROW(load_sfa(in), std::runtime_error) << "cut " << cut;
  }
  // Out-of-range transition: delta entries start after the header and the
  // two acceptance arrays; smash one with 0xFF.
  {
    std::string bad = good;
    const std::size_t delta_off = 4 + 2 + 16 + sfa.dfa_states() + sfa.num_states();
    bad[delta_off] = '\xFF';
    bad[delta_off + 1] = '\xFF';
    bad[delta_off + 2] = '\xFF';
    bad[delta_off + 3] = '\xFF';
    std::istringstream in(bad);
    EXPECT_THROW(load_sfa(in), std::runtime_error);
  }
  EXPECT_THROW(load_sfa_file("/nonexistent/path/x.sfa"), std::runtime_error);
}

}  // namespace
}  // namespace sfa
