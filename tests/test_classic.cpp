// Classic-matcher baselines (paper §V): Aho–Corasick, Boyer–Moore,
// Rabin–Karp — correctness against a naive oracle and against each other,
// plus the AC -> DFA bridge into the SFA machinery.
#include <gtest/gtest.h>

#include <set>

#include "sfa/automata/ops.hpp"
#include "sfa/classic/aho_corasick.hpp"
#include "sfa/classic/boyer_moore.hpp"
#include "sfa/classic/rabin_karp.hpp"
#include "sfa/core/build.hpp"
#include "sfa/core/equivalence.hpp"
#include "sfa/support/rng.hpp"

namespace sfa {
namespace {

const Alphabet& kDna = Alphabet::dna();

std::vector<Symbol> random_text(std::size_t len, unsigned k,
                                std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Symbol> v(len);
  for (auto& s : v) s = static_cast<Symbol>(rng.below(k));
  return v;
}

/// Oracle: naive O(n*m) scan for all occurrences of one pattern.
std::vector<std::size_t> naive_find_all(const std::vector<Symbol>& pattern,
                                        const std::vector<Symbol>& text) {
  std::vector<std::size_t> out;
  if (pattern.empty() || text.size() < pattern.size()) return out;
  for (std::size_t i = 0; i + pattern.size() <= text.size(); ++i) {
    if (std::equal(pattern.begin(), pattern.end(), text.begin() + static_cast<std::ptrdiff_t>(i)))
      out.push_back(i);
  }
  return out;
}

// ---- Aho-Corasick ---------------------------------------------------------------

TEST(AhoCorasickTest, FindsAllPlantedPatterns) {
  const std::vector<std::string> patterns = {"ACG", "GT", "TTT"};
  const AhoCorasick ac = AhoCorasick::from_strings(patterns, kDna);
  const auto text = kDna.encode("AACGTTTTGT");
  const auto matches = ac.find_all(text.data(), text.size());
  // ACG at 1 (end 4), GT at 3 (end 5), TTT at 4 and 5 (ends 7, 8), GT at 8
  // (end 10).
  std::set<std::pair<std::size_t, std::uint32_t>> got;
  for (const auto& m : matches) got.insert({m.end_position, m.pattern});
  EXPECT_TRUE(got.count({4, 0}));
  EXPECT_TRUE(got.count({5, 1}));
  EXPECT_TRUE(got.count({7, 2}));
  EXPECT_TRUE(got.count({8, 2}));
  EXPECT_TRUE(got.count({10, 1}));
  EXPECT_EQ(matches.size(), 5u);
}

TEST(AhoCorasickTest, OverlappingAndNestedPatterns) {
  // "A" is a suffix of "AA"; output inheritance along failure links must
  // report both.
  const AhoCorasick ac = AhoCorasick::from_strings({"A", "AA"}, kDna);
  const auto text = kDna.encode("AAA");
  EXPECT_EQ(ac.count_matches(text.data(), text.size()), 5u);  // 3x"A"+2x"AA"
}

TEST(AhoCorasickTest, MatchesNaiveOracleOnRandomTexts) {
  Xoshiro256 rng(17);
  const std::vector<std::string> pattern_strings = {"AC", "CGT", "TT", "GAGA"};
  std::vector<std::vector<Symbol>> patterns;
  for (const auto& p : pattern_strings) patterns.push_back(kDna.encode(p));
  const AhoCorasick ac = AhoCorasick::from_strings(pattern_strings, kDna);

  for (int trial = 0; trial < 30; ++trial) {
    const auto text = random_text(500, 4, 100 + trial);
    std::size_t expected = 0;
    for (const auto& p : patterns) expected += naive_find_all(p, text).size();
    EXPECT_EQ(ac.count_matches(text.data(), text.size()), expected) << trial;
  }
}

TEST(AhoCorasickTest, ContainsAnyEarlyExit) {
  const AhoCorasick ac = AhoCorasick::from_strings({"GATTACA"}, kDna);
  auto text = random_text(10000, 4, 3);
  const auto planted = kDna.encode("GATTACA");
  std::copy(planted.begin(), planted.end(), text.begin() + 5000);
  EXPECT_TRUE(ac.contains_any(text.data(), text.size()));
  const auto clean = std::vector<Symbol>(1000, 0);  // "AAAA..."
  EXPECT_FALSE(ac.contains_any(clean.data(), clean.size()));
}

TEST(AhoCorasickTest, RejectsBadInput) {
  EXPECT_THROW(AhoCorasick({{}}, 4), std::invalid_argument);
  EXPECT_THROW(AhoCorasick({{Symbol{9}}}, 4), std::invalid_argument);
}

TEST(AhoCorasickTest, ToDfaEquivalentToUnionRegex) {
  // AC automaton as DFA == match-anywhere union of the literals.
  const AhoCorasick ac = AhoCorasick::from_strings({"ACG", "TT"}, kDna);
  const Dfa via_ac = ac.to_dfa();
  const Dfa via_regex = compile_pattern("ACG|TT", kDna);  // anywhere default
  EXPECT_TRUE(dfa_equivalent(via_ac, via_regex));
}

TEST(AhoCorasickTest, ToDfaFeedsSfaConstruction) {
  const AhoCorasick ac =
      AhoCorasick::from_strings({"RGD", "KDEL", "NGS"}, Alphabet::amino());
  const Dfa dfa = ac.to_dfa();
  const Sfa sfa = build_sfa_parallel(dfa, {.num_threads = 2});
  EXPECT_TRUE(verify_sfa(sfa, dfa, {.random_inputs = 30}).ok);
}

// ---- Boyer-Moore ------------------------------------------------------------------

TEST(BoyerMooreTest, FindsFirstAndAll) {
  const BoyerMoore bm = BoyerMoore::from_string("GCAGAGAG", kDna);
  const auto text = kDna.encode("GCATCGCAGAGAGTATACAGTACG");
  EXPECT_EQ(bm.find(text.data(), text.size()), 5u);
  const auto all = bm.find_all(text.data(), text.size());
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0], 5u);
}

TEST(BoyerMooreTest, OverlappingOccurrences) {
  const BoyerMoore bm = BoyerMoore::from_string("AAA", kDna);
  const auto text = kDna.encode("AAAAA");
  const auto all = bm.find_all(text.data(), text.size());
  EXPECT_EQ(all, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(BoyerMooreTest, NoMatch) {
  const BoyerMoore bm = BoyerMoore::from_string("GATTACA", kDna);
  const auto text = kDna.encode("CCCCCCCCCC");
  EXPECT_EQ(bm.find(text.data(), text.size()), BoyerMoore::npos);
  EXPECT_TRUE(bm.find_all(text.data(), text.size()).empty());
  // Text shorter than the pattern.
  EXPECT_EQ(bm.find(text.data(), 3), BoyerMoore::npos);
}

TEST(BoyerMooreTest, MatchesNaiveOracleOnRandomTexts) {
  Xoshiro256 rng(19);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t m = 1 + rng.below(8);
    std::vector<Symbol> pattern(m);
    for (auto& s : pattern) s = static_cast<Symbol>(rng.below(4));
    const BoyerMoore bm(pattern, 4);
    const auto text = random_text(300, 4, 500 + trial);
    EXPECT_EQ(bm.find_all(text.data(), text.size()),
              naive_find_all(pattern, text))
        << trial;
  }
}

// ---- Rabin-Karp --------------------------------------------------------------------

TEST(RabinKarpTest, SinglePattern) {
  const RabinKarp rk = RabinKarp::from_strings({"GATTA"}, kDna);
  const auto text = kDna.encode("AAGATTAGATTACA");
  const auto all = rk.find_all(text.data(), text.size());
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].position, 2u);
  EXPECT_EQ(all[1].position, 7u);
}

TEST(RabinKarpTest, MultiPatternSameLength) {
  const RabinKarp rk = RabinKarp::from_strings({"ACG", "TTT", "GGG"}, kDna);
  const auto text = kDna.encode("ACGTTTGGG");
  const auto all = rk.find_all(text.data(), text.size());
  EXPECT_EQ(all.size(), 3u);
  std::set<std::uint32_t> seen;
  for (const auto& m : all) seen.insert(m.pattern);
  EXPECT_EQ(seen.size(), 3u);
}

TEST(RabinKarpTest, MixedLengthsRejected) {
  EXPECT_THROW(RabinKarp::from_strings({"AC", "ACG"}, kDna),
               std::invalid_argument);
  EXPECT_THROW(RabinKarp::from_strings({}, kDna), std::invalid_argument);
}

TEST(RabinKarpTest, MatchesNaiveOracleOnRandomTexts) {
  Xoshiro256 rng(23);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t m = 2 + rng.below(5);
    std::vector<std::vector<Symbol>> patterns(3);
    for (auto& p : patterns) {
      p.resize(m);
      for (auto& s : p) s = static_cast<Symbol>(rng.below(4));
    }
    const RabinKarp rk(patterns, 4);
    const auto text = random_text(400, 4, 900 + trial);
    std::size_t expected = 0;
    for (const auto& p : patterns) expected += naive_find_all(p, text).size();
    // Duplicate patterns in the random set double-count in the oracle the
    // same way find_all reports per pattern id, so counts agree.
    EXPECT_EQ(rk.find_all(text.data(), text.size()).size(), expected) << trial;
  }
}

TEST(RabinKarpTest, ContainsAnyAgreesWithFindAll) {
  Xoshiro256 rng(29);
  const RabinKarp rk = RabinKarp::from_strings({"ACGT", "TTTT"}, kDna);
  for (int trial = 0; trial < 30; ++trial) {
    const auto text = random_text(64, 4, 1300 + trial);
    EXPECT_EQ(rk.contains_any(text.data(), text.size()),
              !rk.find_all(text.data(), text.size()).empty());
  }
}

// ---- Cross-matcher agreement --------------------------------------------------------

TEST(ClassicAgreement, AllFourMatchersAgreeOnLiterals) {
  // One literal, four engines: AC, BM, RK, and the library's DFA.
  const std::string pattern = "TGACGTCA";
  const AhoCorasick ac = AhoCorasick::from_strings({pattern}, kDna);
  const BoyerMoore bm = BoyerMoore::from_string(pattern, kDna);
  const RabinKarp rk = RabinKarp::from_strings({pattern}, kDna);
  const Dfa dfa = compile_pattern(pattern, kDna);

  Xoshiro256 rng(31);
  for (int trial = 0; trial < 40; ++trial) {
    auto text = random_text(2000, 4, 1700 + trial);
    if (trial % 2 == 0) {
      const auto planted = kDna.encode(pattern);
      std::copy(planted.begin(), planted.end(),
                text.begin() + static_cast<std::ptrdiff_t>(rng.below(1900)));
    }
    const bool via_ac = ac.contains_any(text.data(), text.size());
    const bool via_bm = bm.find(text.data(), text.size()) != BoyerMoore::npos;
    const bool via_rk = rk.contains_any(text.data(), text.size());
    const bool via_dfa = dfa.accepts(text);
    EXPECT_EQ(via_ac, via_bm) << trial;
    EXPECT_EQ(via_ac, via_rk) << trial;
    EXPECT_EQ(via_ac, via_dfa) << trial;
  }
}

}  // namespace
}  // namespace sfa
