// SIMD kernel tests: every transpose kernel against the scalar reference,
// and the parameterized transposition against a brute-force oracle.
#include <gtest/gtest.h>

#include <vector>

#include "sfa/simd/transpose.hpp"
#include "sfa/support/rng.hpp"

namespace sfa {
namespace {

template <typename Cell>
std::vector<Cell> random_table(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Cell> v(n);
  for (auto& c : v) c = static_cast<Cell>(rng.next());
  return v;
}

TEST(Kernel8x8U16, MatchesScalar) {
  if (!simd_transpose_available()) GTEST_SKIP();
  const auto data = random_table<std::uint16_t>(8 * 8, 1);
  const std::uint16_t* rows[8];
  for (int r = 0; r < 8; ++r) rows[r] = data.data() + r * 8;

  std::vector<std::uint16_t> got(8 * 8), want(8 * 8);
  transpose8x8_u16_sse(rows, got.data(), 8);
  transpose8x8_u16_scalar(rows, want.data(), 8);
  EXPECT_EQ(got, want);
}

TEST(Kernel8x8U16, StridedOutput) {
  if (!simd_transpose_available()) GTEST_SKIP();
  const auto data = random_table<std::uint16_t>(8 * 8, 2);
  const std::uint16_t* rows[8];
  for (int r = 0; r < 8; ++r) rows[r] = data.data() + r * 8;

  const std::size_t stride = 19;
  std::vector<std::uint16_t> got(8 * stride, 0xABCD), want(8 * stride, 0xABCD);
  transpose8x8_u16_sse(rows, got.data(), stride);
  transpose8x8_u16_scalar(rows, want.data(), stride);
  EXPECT_EQ(got, want);
}

TEST(Kernel8x4U16, MatchesScalar) {
  if (!simd_transpose_available()) GTEST_SKIP();
  const auto data = random_table<std::uint16_t>(8 * 4, 3);
  const std::uint16_t* rows[8];
  for (int r = 0; r < 8; ++r) rows[r] = data.data() + r * 4;

  const std::size_t stride = 11;
  std::vector<std::uint16_t> got(4 * stride, 0), want(4 * stride, 0);
  transpose8x4_u16_sse(rows, got.data(), stride);
  for (int c = 0; c < 4; ++c)
    for (int r = 0; r < 8; ++r) want[c * stride + r] = rows[r][c];
  EXPECT_EQ(got, want);
}

TEST(Kernel8x8U32, MatchesScalar) {
  if (!simd16_transpose_available()) GTEST_SKIP();
  const auto data = random_table<std::uint32_t>(8 * 8, 4);
  const std::uint32_t* rows[8];
  for (int r = 0; r < 8; ++r) rows[r] = data.data() + r * 8;

  std::vector<std::uint32_t> got(8 * 8), want(8 * 8);
  transpose8x8_u32_avx2(rows, got.data(), 8);
  transpose8x8_u32_scalar(rows, want.data(), 8);
  EXPECT_EQ(got, want);
}

TEST(Kernel16x16U16, MatchesScalar) {
  if (!simd16_transpose_available()) GTEST_SKIP();
  const auto data = random_table<std::uint16_t>(16 * 16, 5);
  const std::uint16_t* rows[16];
  for (int r = 0; r < 16; ++r) rows[r] = data.data() + r * 16;

  const std::size_t stride = 23;
  std::vector<std::uint16_t> got(16 * stride, 0), want(16 * stride, 0);
  transpose16x16_u16_avx2(rows, got.data(), stride);
  for (int c = 0; c < 16; ++c)
    for (int r = 0; r < 16; ++r) want[c * stride + r] = rows[r][c];
  EXPECT_EQ(got, want);
}

// ---- Parameterized transposition: oracle sweep across shapes -------------------

template <typename Cell>
void check_successors(unsigned n_states, unsigned k, unsigned n,
                      TransposeMethod method, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  // Random complete delta table (values < n_states) + random source state.
  std::vector<Cell> delta(static_cast<std::size_t>(n_states) * k);
  for (auto& c : delta) c = static_cast<Cell>(rng.below(n_states));
  std::vector<Cell> src(n);
  for (auto& c : src) c = static_cast<Cell>(rng.below(n_states));

  std::vector<Cell> got(static_cast<std::size_t>(k) * n, Cell(0xEE));
  successors_transposed<Cell>(delta.data(), k, src.data(), n, got.data(),
                              method);
  for (unsigned s = 0; s < k; ++s)
    for (unsigned i = 0; i < n; ++i)
      ASSERT_EQ(got[static_cast<std::size_t>(s) * n + i],
                delta[static_cast<std::size_t>(src[i]) * k + s])
          << "sigma=" << s << " cell=" << i << " n=" << n << " k=" << k;
}

struct ShapeParam {
  unsigned n_states, k, n;
};

class SuccessorsSweep
    : public ::testing::TestWithParam<std::tuple<ShapeParam, TransposeMethod>> {
};

TEST_P(SuccessorsSweep, U16MatchesOracle) {
  const auto [shape, method] = GetParam();
  check_successors<std::uint16_t>(shape.n_states, shape.k, shape.n, method,
                                  shape.n * 131 + shape.k);
}

TEST_P(SuccessorsSweep, U32MatchesOracle) {
  const auto [shape, method] = GetParam();
  check_successors<std::uint32_t>(shape.n_states, shape.k, shape.n, method,
                                  shape.n * 137 + shape.k);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SuccessorsSweep,
    ::testing::Combine(
        ::testing::Values(ShapeParam{3, 20, 3},     // Fig. 1 size
                          ShapeParam{8, 8, 8},      // exact kernel tile
                          ShapeParam{16, 16, 16},   // exact 16x16 tile
                          ShapeParam{100, 20, 100}, // PROSITE-ish
                          ShapeParam{7, 5, 7},      // everything-tail
                          ShapeParam{33, 20, 33},   // 8-tail cells
                          ShapeParam{64, 4, 64},    // DNA alphabet
                          ShapeParam{257, 20, 257}, // larger than a tile row
                          ShapeParam{1, 20, 1},     // degenerate single state
                          ShapeParam{513, 95, 513}),// ASCII-sized alphabet
        ::testing::Values(TransposeMethod::kScalar, TransposeMethod::kSimd8,
                          TransposeMethod::kSimd16x16,
                          TransposeMethod::kAuto)),
    [](const auto& info) {
      const ShapeParam& shape = std::get<0>(info.param);
      const TransposeMethod method = std::get<1>(info.param);
      const char* m = method == TransposeMethod::kScalar      ? "scalar"
                      : method == TransposeMethod::kSimd8     ? "simd8"
                      : method == TransposeMethod::kSimd16x16 ? "simd16"
                                                              : "auto";
      return "n" + std::to_string(shape.n) + "k" + std::to_string(shape.k) +
             "_" + m;
    });

TEST(SuccessorsProperty, RandomShapesU16) {
  Xoshiro256 rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    const unsigned n_states = 1 + static_cast<unsigned>(rng.below(300));
    const unsigned k = 1 + static_cast<unsigned>(rng.below(40));
    check_successors<std::uint16_t>(n_states, k, n_states,
                                    TransposeMethod::kAuto, rng.next());
  }
}

TEST(Dispatch, AutoSelectsAvailableKernel) {
  // kAuto must never crash regardless of host; equality with scalar is the
  // real check and is covered above.
  check_successors<std::uint16_t>(50, 20, 50, TransposeMethod::kAuto, 9);
  check_successors<std::uint32_t>(50, 20, 50, TransposeMethod::kAuto, 10);
}

}  // namespace
}  // namespace sfa
