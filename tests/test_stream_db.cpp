// Tests for the streaming matcher and the PROSITE flat-file loader.
#include <gtest/gtest.h>

#include <sstream>

#include "sfa/core/build.hpp"
#include "sfa/core/match.hpp"
#include "sfa/core/stream_matcher.hpp"
#include "sfa/prosite/prosite_db.hpp"
#include "sfa/prosite/prosite_parser.hpp"
#include "sfa/support/rng.hpp"

namespace sfa {
namespace {

// ---- StreamMatcher ---------------------------------------------------------------

TEST(StreamMatcherTest, BlockwiseEqualsWholeInput) {
  const Dfa dfa = compile_prosite("N-{P}-[ST]-{P}.");
  const Sfa sfa = build_sfa_transposed(dfa);
  Xoshiro256 rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Symbol> text(3000);
    for (auto& s : text) s = static_cast<Symbol>(rng.below(20));

    StreamMatcher stream(sfa);
    std::size_t pos = 0;
    while (pos < text.size()) {
      const std::size_t block = std::min<std::size_t>(
          1 + rng.below(500), text.size() - pos);
      stream.feed(text.data() + pos, block);
      pos += block;
    }
    EXPECT_EQ(stream.matched(), match_sequential(dfa, text).accepted) << trial;
    EXPECT_EQ(stream.dfa_state(),
              match_sequential(dfa, text).final_dfa_state);
    EXPECT_EQ(stream.symbols_consumed(), text.size());
  }
}

TEST(StreamMatcherTest, MatchAcrossBlockBoundary) {
  const Dfa dfa = compile_prosite("R-G-D.");
  const Sfa sfa = build_sfa_transposed(dfa);
  const auto part1 = Alphabet::amino().encode("AAAAR");
  const auto part2 = Alphabet::amino().encode("GDAAA");
  StreamMatcher stream(sfa);
  stream.feed(part1);
  EXPECT_FALSE(stream.matched());
  stream.feed(part2);
  EXPECT_TRUE(stream.matched());  // R|GD straddles the boundary
}

TEST(StreamMatcherTest, ParallelFeedEqualsSequentialFeed) {
  const Dfa dfa = compile_prosite("[ST]-x(2)-[DE].");
  const Sfa sfa = build_sfa_transposed(dfa);
  Xoshiro256 rng(2);
  std::vector<Symbol> block(1 << 14);
  for (auto& s : block) s = static_cast<Symbol>(rng.below(20));

  StreamMatcher seq(sfa, 1), par(sfa, 4);
  for (int i = 0; i < 4; ++i) {
    seq.feed(block);
    par.feed(block);
    ASSERT_EQ(seq.dfa_state(), par.dfa_state()) << "after block " << i;
  }
}

TEST(StreamMatcherTest, ResetAndRestore) {
  const Dfa dfa = compile_prosite("R-G-D.");
  const Sfa sfa = build_sfa_transposed(dfa);
  StreamMatcher stream(sfa);
  stream.feed(Alphabet::amino().encode("RGD"));
  EXPECT_TRUE(stream.matched());
  const auto checkpoint = stream.dfa_state();
  stream.reset();
  EXPECT_FALSE(stream.matched());
  stream.restore(checkpoint);
  EXPECT_TRUE(stream.matched());
}

TEST(StreamMatcherTest, EmptyFeedIsNoop) {
  const Dfa dfa = compile_prosite("R-G-D.");
  const Sfa sfa = build_sfa_transposed(dfa);
  StreamMatcher stream(sfa);
  const auto before = stream.dfa_state();
  stream.feed(nullptr, 0);
  EXPECT_EQ(stream.dfa_state(), before);
}

// ---- PROSITE flat-file loader ------------------------------------------------------

constexpr const char* kSampleDat = R"(CC   ****************************
CC   Sample of the PROSITE format
CC   ****************************
//
ID   ASN_GLYCOSYLATION; PATTERN.
AC   PS00001;
DT   01-APR-1990 CREATED;
DE   N-glycosylation site.
PA   N-{P}-[ST]-{P}.
//
ID   SOME_MATRIX; MATRIX.
AC   PS50001;
DE   A profile entry without PA lines - must be skipped.
//
ID   ZINC_FINGER_C2H2_1; PATTERN.
AC   PS00028;
PA   C-x(2,4)-C-x(3)-[LIVMFYWC]-x(8)-H-x(3,5)-
PA   H.
//
ID   BROKEN_ENTRY; PATTERN.
AC   PS99999;
PA   N-{P]-[ST.
//
)";

TEST(PrositeDb, ParsesEntriesAndContinuations) {
  std::istringstream in(kSampleDat);
  const auto entries = load_prosite_dat(in);
  ASSERT_EQ(entries.size(), 2u);  // matrix skipped, broken skipped
  EXPECT_EQ(entries[0].id, "PS00001");
  EXPECT_EQ(entries[0].pattern, "N-{P}-[ST]-{P}.");
  EXPECT_EQ(entries[1].id, "PS00028");
  // Continuation concatenated.
  EXPECT_EQ(entries[1].pattern,
            "C-x(2,4)-C-x(3)-[LIVMFYWC]-x(8)-H-x(3,5)-H.");
  // Both must compile.
  EXPECT_NO_THROW(parse_prosite(entries[0].pattern));
  EXPECT_NO_THROW(parse_prosite(entries[1].pattern));
}

TEST(PrositeDb, StrictModeThrowsOnBrokenPattern) {
  std::istringstream in(kSampleDat);
  EXPECT_THROW(load_prosite_dat(in, /*strict=*/true), std::runtime_error);
}

TEST(PrositeDb, EmptyAndHeaderOnlyStreams) {
  std::istringstream empty("");
  EXPECT_TRUE(load_prosite_dat(empty).empty());
  std::istringstream header_only("CC   just comments\n//\n");
  EXPECT_TRUE(load_prosite_dat(header_only).empty());
}

TEST(PrositeDb, MissingFileThrows) {
  EXPECT_THROW(load_prosite_dat_file("/no/such/prosite.dat"),
               std::runtime_error);
}

}  // namespace
}  // namespace sfa
