// Lazy on-demand SFA matching: construction fused into the parallel scan.
//
// The headline property (the reason the lazy matcher exists): a DFA whose
// eager build() aborts on max_states is still matched EXACTLY — only
// input-reachable SFA states are interned, and a hard memory cap degrades
// the walk to direct per-chunk DFA simulation rather than failing.  Each
// test cross-checks against the sequential DFA reference; the corpus-wide
// matrix lives in test_oracle.cpp (OracleLazy).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "harness/corpus.hpp"
#include "sfa/automata/random_dfa.hpp"
#include "sfa/core/build.hpp"
#include "sfa/core/lazy_matcher.hpp"
#include "sfa/core/match.hpp"
#include "sfa/core/scan/engine.hpp"
#include "sfa/core/scan/tasks.hpp"
#include "sfa/core/stream_matcher.hpp"
#include "sfa/support/rng.hpp"

namespace sfa {
namespace {

/// SFA_FUZZ_ITERS / 3000 scaling with a floor, as in test_fuzz.cpp.
int fuzz_iters(int dflt) {
  static const long iters = [] {
    const char* env = std::getenv("SFA_FUZZ_ITERS");
    return env && *env ? std::strtol(env, nullptr, 10) : -1L;
  }();
  if (iters <= 0) return dflt;
  return static_cast<int>(std::max(static_cast<long>(dflt) * iters / 3000, 20L));
}

std::size_t reference_count(const Dfa& dfa, const std::vector<Symbol>& input) {
  return dfa.count_accepting_prefixes(input.data(), input.size());
}

std::size_t reference_first(const Dfa& dfa, const std::vector<Symbol>& input) {
  Dfa::StateId q = dfa.start();
  for (std::size_t i = 0; i < input.size(); ++i) {
    q = dfa.transition(q, input[i]);
    if (dfa.accepting(q)) return i + 1;
  }
  return kNoMatch;
}

std::vector<Symbol> random_input(std::uint64_t seed, unsigned k,
                                 std::size_t len) {
  Xoshiro256 rng(seed);
  std::vector<Symbol> input(len);
  for (auto& s : input) s = static_cast<Symbol>(rng.below(k));
  return input;
}

/// All three lazy front-ends must agree with the DFA reference on `input`.
void expect_exact(const Dfa& dfa, const std::vector<Symbol>& input,
                  const LazyMatchOptions& opt, const char* what) {
  const MatchResult ref = match_sequential(dfa, input);
  LazyMatchStats stats;
  const MatchResult got = match_sfa_lazy(dfa, input, opt, &stats);
  EXPECT_EQ(got.accepted, ref.accepted) << what;
  EXPECT_EQ(got.final_dfa_state, ref.final_dfa_state) << what;
  EXPECT_EQ(count_matches_lazy(dfa, input, opt), reference_count(dfa, input))
      << what;
  EXPECT_EQ(find_first_match_lazy(dfa, input, opt),
            reference_first(dfa, input))
      << what;
}

TEST(LazyMatch, CapOfOneForcesDirectSimulationButStaysExact) {
  // cap=1 cannot even admit the identity seed: every chunk must run the
  // direct DFA×identity fallback, interning nothing — and still be exact.
  RandomDfaOptions ropt;
  ropt.num_states = 11;
  ropt.num_symbols = 5;
  ropt.seed = 42;
  const Dfa dfa = random_dfa(ropt);

  LazyMatchOptions opt;
  opt.num_threads = 4;
  opt.memory_cap_bytes = 1;
  const std::vector<Symbol> input = random_input(7, ropt.num_symbols, 1024);

  LazyMatchStats stats;
  const MatchResult got = match_sfa_lazy(dfa, input, opt, &stats);
  const MatchResult ref = match_sequential(dfa, input);
  EXPECT_EQ(got.accepted, ref.accepted);
  EXPECT_EQ(got.final_dfa_state, ref.final_dfa_state);
  EXPECT_TRUE(stats.cap_hit);
  EXPECT_EQ(stats.interned_states, 0u);
  EXPECT_GT(stats.fallback_chunks, 0u);
  EXPECT_GT(stats.direct_symbols, 0u);
  expect_exact(dfa, input, opt, "cap=1");
}

TEST(LazyMatch, MidWalkCapFallbackStaysExact) {
  // A cap just big enough for a handful of states: the walk interns a
  // while, hits the cap mid-chunk, and switches to direct simulation from
  // the state it had reached.  Exactness must survive the transition.
  RandomDfaOptions ropt;
  ropt.num_states = 24;
  ropt.num_symbols = 6;
  ropt.seed = 99;
  const Dfa dfa = random_dfa(ropt);

  LazyMatchOptions opt;
  opt.num_threads = 3;
  opt.memory_cap_bytes = 4096;
  const std::vector<Symbol> input = random_input(13, ropt.num_symbols, 4096);
  expect_exact(dfa, input, opt, "cap=4096");
}

TEST(LazyMatch, ExplosiveDfaIsMatchedCorrectly) {
  // THE acceptance criterion: find a random DFA whose eager build() aborts
  // on max_states, then match it lazily — exactly.
  BuildOptions tight;
  tight.max_states = 64;

  Dfa dfa{1};
  bool found = false;
  for (std::uint64_t seed = 1; seed <= 40 && !found; ++seed) {
    RandomDfaOptions ropt;
    ropt.num_states = 10;
    ropt.num_symbols = 6;
    ropt.seed = seed;
    Dfa candidate = random_dfa(ropt);
    try {
      build_sfa(candidate, BuildMethod::kTransposed, tight);
    } catch (const std::runtime_error&) {
      dfa = std::move(candidate);
      found = true;
    }
  }
  ASSERT_TRUE(found) << "no random DFA exceeded 64 eager SFA states";
  ASSERT_THROW(build_sfa(dfa, BuildMethod::kTransposed, tight),
               std::runtime_error);
  ASSERT_THROW(build_sfa(dfa, BuildMethod::kParallel, tight),
               std::runtime_error);

  // The same automaton is served lazily, with and without a memory cap, by
  // both successor generators.
  for (const bool transposed : {false, true}) {
    for (const std::size_t cap : {std::size_t{0}, std::size_t{1u << 14}}) {
      LazyMatchOptions opt;
      opt.num_threads = 4;
      opt.transposed_successors = transposed;
      opt.memory_cap_bytes = cap;
      for (std::uint64_t s = 0; s < 6; ++s)
        expect_exact(dfa, random_input(s, dfa.num_symbols(), 256 + 512 * s),
                     opt, transposed ? "transposed" : "scalar");
    }
  }
}

TEST(LazyMatch, InternsOnlyInputReachableStates) {
  // On a pathological random DFA the eager SFA holds every reachable
  // mapping; the lazy table may hold only states some input visited.
  RandomDfaOptions ropt;
  ropt.num_states = 9;
  ropt.num_symbols = 4;
  ropt.seed = 3;
  const Dfa dfa = random_dfa(ropt);

  BuildStats eager_stats;
  (void)build_sfa(dfa, BuildMethod::kTransposed, {}, &eager_stats);
  ASSERT_GT(eager_stats.sfa_states, 0u);

  LazyMatchOptions opt;
  opt.num_threads = 2;
  LazyMatchStats stats;
  const std::vector<Symbol> input = random_input(17, ropt.num_symbols, 512);
  (void)match_sfa_lazy(dfa, input, opt, &stats);
  EXPECT_GT(stats.interned_states, 0u);
  EXPECT_LE(stats.interned_states, eager_stats.sfa_states);
  EXPECT_GT(stats.cache_hits, 0u);
  EXPECT_GT(stats.cache_misses, 0u);
}

TEST(LazyMatch, CompressOnCreateThresholdStaysExact) {
  // threshold=1 flips compress-on-create after the first state: the walk
  // then probes and decompresses mixed raw/compressed nodes throughout.
  RandomDfaOptions ropt;
  ropt.num_states = 40;
  ropt.num_symbols = 5;
  ropt.seed = 12;
  const Dfa dfa = random_dfa(ropt);

  LazyMatchOptions opt;
  opt.num_threads = 3;
  opt.memory_threshold_bytes = 1;
  const std::vector<Symbol> input = random_input(23, ropt.num_symbols, 2048);

  LazyMatchStats stats;
  const MatchResult got = match_sfa_lazy(dfa, input, opt, &stats);
  const MatchResult ref = match_sequential(dfa, input);
  EXPECT_EQ(got.accepted, ref.accepted);
  EXPECT_EQ(got.final_dfa_state, ref.final_dfa_state);
  EXPECT_TRUE(stats.compression_triggered);
  expect_exact(dfa, input, opt, "threshold=1");
}

TEST(LazyMatch, FuzzAgainstDfaReference) {
  // Seeded sweep over random DFAs × inputs × option matrix, scaled by
  // SFA_FUZZ_ITERS like the other fuzz suites.
  const int iters = fuzz_iters(120);
  Xoshiro256 rng(0xB00F);
  for (int i = 0; i < iters; ++i) {
    RandomDfaOptions ropt;
    ropt.num_states = 2 + static_cast<std::uint32_t>(rng.below(24));
    ropt.num_symbols = 1 + static_cast<unsigned>(rng.below(7));
    ropt.seed = rng.next();
    const Dfa dfa = random_dfa(ropt);

    LazyMatchOptions opt;
    opt.num_threads = 1 + static_cast<unsigned>(rng.below(4));
    opt.transposed_successors = rng.below(2) == 0;
    const std::size_t caps[] = {0, 0, 1, 4096};
    opt.memory_cap_bytes = caps[rng.below(4)];
    if (rng.below(4) == 0) opt.memory_threshold_bytes = 1u << 10;

    const std::size_t len = rng.below(1500);
    expect_exact(dfa, random_input(rng.next(), ropt.num_symbols, len), opt,
                 "fuzz");
  }
}

TEST(LazyMatch, EightWorkersShareOneInternTableAcrossCalls) {
  // The tsan-lane stress: 8 workers race intern/find/row-publication on ONE
  // persistent table, repeatedly, with results checked every call.
  RandomDfaOptions ropt;
  ropt.num_states = 18;
  ropt.num_symbols = 6;
  ropt.seed = 77;
  const Dfa dfa = random_dfa(ropt);

  LazyMatchOptions opt;
  opt.num_threads = 8;
  LazyMatcher matcher(dfa, opt);
  std::uint64_t last_states = 0;
  for (int round = 0; round < 8; ++round) {
    const std::vector<Symbol> input =
        random_input(1000 + round, ropt.num_symbols, 4096);
    const MatchResult ref = match_sequential(dfa, input);
    const MatchResult got = matcher.match(input);
    EXPECT_EQ(got.accepted, ref.accepted) << "round " << round;
    EXPECT_EQ(got.final_dfa_state, ref.final_dfa_state) << "round " << round;
    EXPECT_EQ(matcher.count(input), reference_count(dfa, input));
    EXPECT_EQ(matcher.find_first(input), reference_first(dfa, input));
    EXPECT_EQ(matcher.stats().threads, 8u);
    // The shared table only grows (and the second pass over the same
    // inputs would be all hits).
    EXPECT_GE(matcher.stats().interned_states, last_states);
    last_states = matcher.stats().interned_states;
  }
}

TEST(LazyMatch, StreamMatcherLazyBackendMatchesOneShot) {
  RandomDfaOptions ropt;
  ropt.num_states = 14;
  ropt.num_symbols = 5;
  ropt.seed = 5;
  const Dfa dfa = random_dfa(ropt);
  const std::vector<Symbol> input = random_input(31, ropt.num_symbols, 6000);

  LazyMatchOptions opt;
  opt.num_threads = 4;
  LazyMatcher matcher(dfa, opt);
  StreamMatcher stream(matcher);
  // Uneven block sizes cross chunking thresholds both ways.
  const std::size_t blocks[] = {1, 63, 512, 2048, 9999};
  std::size_t off = 0;
  unsigned b = 0;
  while (off < input.size()) {
    const std::size_t len = std::min(blocks[b++ % 5], input.size() - off);
    stream.feed(input.data() + off, len);
    off += len;
  }
  EXPECT_EQ(stream.symbols_consumed(), input.size());

  const Dfa::StateId ref = dfa.run(dfa.start(), input.data(), input.size());
  EXPECT_EQ(stream.dfa_state(), ref);
  EXPECT_EQ(stream.matched(), dfa.accepting(ref));

  // reset() starts a fresh stream over the SAME warmed intern table.
  stream.reset();
  stream.feed(input);
  EXPECT_EQ(stream.dfa_state(), ref);
}

TEST(LazyMatch, AdvanceComposesFromArbitraryEntryStates) {
  // advance() is the primitive that distinguishes lazy streaming: chunk
  // mappings compose from ANY entry state, no pre-built SFA required.
  RandomDfaOptions ropt;
  ropt.num_states = 12;
  ropt.num_symbols = 4;
  ropt.seed = 8;
  const Dfa dfa = random_dfa(ropt);
  const std::vector<Symbol> input = random_input(3, ropt.num_symbols, 2000);

  LazyMatchOptions opt;
  opt.num_threads = 3;
  LazyMatcher matcher(dfa, opt);
  for (Dfa::StateId q = 0; q < dfa.size(); ++q) {
    const Dfa::StateId ref = dfa.run(q, input.data(), input.size());
    EXPECT_EQ(matcher.advance(q, input.data(), input.size()), ref)
        << "entry state " << q;
  }
}

// ---- wrapper parity against the scan substrate -----------------------------
//
// The lazy front-ends run the shared scan::run_* tasks through the private
// LazyScanEngine.  Since every engine must answer every task identically,
// each lazy entry point is required to be bit-for-bit equal to the same
// task driven by the DirectEngine (the sequential DFA reference routed
// through the identical substrate code path).

TEST(WrapperParity, LazyOneShotsMatchDirectEngineTasks) {
  RandomDfaOptions ropt;
  ropt.num_states = 24;
  ropt.num_symbols = 4;
  ropt.seed = 21;
  const Dfa dfa = random_dfa(ropt);
  scan::Executor& exec = scan::default_executor();
  for (const unsigned t : {1u, 3u, 8u}) {
    LazyMatchOptions opt;
    opt.num_threads = t;
    const auto input = random_input(77 + t, ropt.num_symbols, 6000);
    {
      scan::DirectEngine engine(dfa);
      const MatchResult want = scan::run_accept(engine, exec, input.data(),
                                                input.size(), t);
      const MatchResult got = match_sfa_lazy(dfa, input, opt);
      EXPECT_EQ(got.accepted, want.accepted) << t;
      EXPECT_EQ(got.final_dfa_state, want.final_dfa_state) << t;
    }
    {
      scan::DirectEngine engine(dfa);
      EXPECT_EQ(count_matches_lazy(dfa, input, opt),
                scan::run_count(engine, exec, input.data(), input.size(), t))
          << t;
    }
    {
      scan::DirectEngine engine(dfa);
      EXPECT_EQ(
          find_first_match_lazy(dfa, input, opt),
          scan::run_find_first(engine, exec, input.data(), input.size(), t))
          << t;
    }
  }
}

TEST(WrapperParity, LazyAdvanceMatchesDirectEngineRunAdvance) {
  RandomDfaOptions ropt;
  ropt.num_states = 12;
  ropt.num_symbols = 4;
  ropt.seed = 34;
  const Dfa dfa = random_dfa(ropt);
  const std::vector<Symbol> input = random_input(5, ropt.num_symbols, 4000);

  LazyMatchOptions opt;
  opt.num_threads = 4;
  LazyMatcher matcher(dfa, opt);
  for (Dfa::StateId q = 0; q < dfa.size(); ++q) {
    scan::DirectEngine engine(dfa);
    const std::uint32_t want =
        scan::run_advance(engine, scan::default_executor(), input.data(),
                          input.size(), opt.num_threads, q);
    EXPECT_EQ(matcher.advance(q, input.data(), input.size()), want)
        << "entry state " << q;
  }
}

}  // namespace
}  // namespace sfa
