// Chunk-entry state narrowing (PaREM-hybrid NarrowedEngine).
//
// The engine's contract: pass 1 retains a PARTIAL mapping vector per chunk
// — defined exactly on the feasible entry set — and the two-pass compose
// resolves it exactly because a chunk's true entry state is always
// feasible.  These tests pin the partial⊆full containment, the per-chunk
// fallback's parity with the eager/full paths, the input-class behavior
// (shrink on low entropy, fall back on adversarial input), and exactness
// under fuzz and under 8 concurrent workers sharing one reach table.  The
// corpus-wide engine×task matrix lives in test_oracle.cpp (the narrowed
// column of input_divergence).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "harness/corpus.hpp"
#include "harness/input_classes.hpp"
#include "sfa/automata/random_dfa.hpp"
#include "sfa/core/build.hpp"
#include "sfa/core/build/reachable.hpp"
#include "sfa/core/match.hpp"
#include "sfa/core/scan/engine.hpp"
#include "sfa/core/scan/tasks.hpp"
#include "sfa/support/rng.hpp"

namespace sfa {
namespace {

using testing::adversarial_input;
using testing::high_entropy_input;
using testing::low_entropy_input;

/// SFA_FUZZ_ITERS / 3000 scaling with a floor, as in test_fuzz.cpp.
int fuzz_iters(int dflt) {
  static const long iters = [] {
    const char* env = std::getenv("SFA_FUZZ_ITERS");
    return env && *env ? std::strtol(env, nullptr, 10) : -1L;
  }();
  if (iters <= 0) return dflt;
  return static_cast<int>(std::max(static_cast<long>(dflt) * iters / 3000, 20L));
}

std::size_t reference_count(const Dfa& dfa, const std::vector<Symbol>& input) {
  return dfa.count_accepting_prefixes(input.data(), input.size());
}

std::vector<std::size_t> reference_all(const Dfa& dfa,
                                       const std::vector<Symbol>& input) {
  std::vector<std::size_t> out;
  Dfa::StateId q = dfa.start();
  for (std::size_t i = 0; i < input.size(); ++i) {
    q = dfa.transition(q, input[i]);
    if (dfa.accepting(q)) out.push_back(i + 1);
  }
  return out;
}

/// All four tasks on a fresh engine each, against the sequential reference.
void expect_exact(const Dfa& dfa, const std::vector<Symbol>& input,
                  unsigned chunks, const scan::NarrowedOptions& options,
                  const Sfa* fallback_sfa, const ReachTable* shared,
                  const char* what) {
  scan::Executor& exec = scan::default_executor();
  const MatchResult ref = match_sequential(dfa, input);
  const std::vector<std::size_t> all = reference_all(dfa, input);
  {
    scan::NarrowedEngine engine(dfa, options, fallback_sfa, shared);
    const MatchResult got =
        scan::run_accept(engine, exec, input.data(), input.size(), chunks);
    EXPECT_EQ(got.accepted, ref.accepted) << what;
    EXPECT_EQ(got.final_dfa_state, ref.final_dfa_state) << what;
    EXPECT_EQ(engine.feasible_misses(), 0u) << what;
  }
  {
    scan::NarrowedEngine engine(dfa, options, fallback_sfa, shared);
    EXPECT_EQ(
        scan::run_count(engine, exec, input.data(), input.size(), chunks),
        reference_count(dfa, input))
        << what;
  }
  {
    scan::NarrowedEngine engine(dfa, options, fallback_sfa, shared);
    EXPECT_EQ(
        scan::run_find_first(engine, exec, input.data(), input.size(), chunks),
        all.empty() ? kNoMatch : all.front())
        << what;
  }
  {
    scan::NarrowedEngine engine(dfa, options, fallback_sfa, shared);
    EXPECT_EQ(
        scan::run_find_all(engine, exec, input.data(), input.size(), chunks),
        all)
        << what;
  }
}

// ---- reach-table precompute ------------------------------------------------

TEST(ReachTable, ScalarAndTransposedKernelsAgree) {
  for (std::uint64_t seed : {3u, 11u, 29u}) {
    const auto entry = testing::random_dfa_entry(seed, 24, 6);
    const ReachTable a = compute_reach_table(entry.dfa, false);
    const ReachTable b = compute_reach_table(entry.dfa, true);
    ASSERT_EQ(a.per_symbol.size(), b.per_symbol.size());
    for (std::size_t s = 0; s < a.per_symbol.size(); ++s)
      EXPECT_EQ(a.per_symbol[s], b.per_symbol[s]) << "symbol " << s;
  }
}

TEST(ReachTable, SetsAreExactlyTheSymbolImages) {
  const auto entry = testing::random_dfa_entry(5, 17, 4);
  const Dfa& dfa = entry.dfa;
  const ReachTable table = compute_reach_table(dfa);
  ASSERT_EQ(table.num_symbols, dfa.num_symbols());
  for (unsigned a = 0; a < dfa.num_symbols(); ++a) {
    std::vector<std::uint32_t> expect;
    for (Dfa::StateId q = 0; q < dfa.size(); ++q)
      expect.push_back(dfa.transition(q, static_cast<Symbol>(a)));
    std::sort(expect.begin(), expect.end());
    expect.erase(std::unique(expect.begin(), expect.end()), expect.end());
    EXPECT_EQ(table.per_symbol[a], expect) << "symbol " << a;
  }
}

// ---- partial ⊆ full containment --------------------------------------------

TEST(NarrowedMatch, PartialVectorsContainedInFullMapping) {
  // On every feasible entry state, the partial vector must agree with the
  // full mapping (a plain DFA rescan of the chunk) — for every chunk,
  // every peek depth, and with the threshold disabled so no chunk escapes
  // to the fallback.
  const auto entry = testing::literal_entry(21, 8, 3, 6, false);
  const Dfa& dfa = entry.dfa;
  const auto input = high_entropy_input(77, dfa.num_symbols(), 640);
  const unsigned chunks = 5;
  const auto ranges = detail::chunk_ranges(input.size(), chunks);
  for (unsigned peek : {0u, 2u, 8u}) {
    scan::NarrowedOptions options;
    options.peek_k = peek;
    options.shrink_threshold = 1.0;  // never fall back: partial everywhere
    scan::NarrowedEngine engine(dfa, options);
    engine.scan_chunks(input.data(), ranges, scan::default_executor());
    EXPECT_EQ(engine.narrowed_chunks(), chunks - 1);
    for (unsigned c = 1; c < chunks; ++c) {
      const auto [b, e] = ranges[c];
      for (std::uint32_t q : engine.reach().per_symbol[input[b - 1]]) {
        EXPECT_EQ(engine.chunk_exit(c, q, input.data()),
                  dfa.run(static_cast<Dfa::StateId>(q), input.data() + b,
                          e - b))
            << "chunk " << c << " entry " << q << " peek " << peek;
      }
    }
    EXPECT_EQ(engine.feasible_misses(), 0u)
        << "every queried entry state was feasible";
  }
}

// ---- fallback parity -------------------------------------------------------

TEST(NarrowedMatch, FallbackChunksParityWithEagerAndFullPaths) {
  // threshold 0.0 forces the fallback on every narrowable chunk; both
  // fallback representations (SFA mapping walk / all-states simulation)
  // must be indistinguishable from the eager engine, task by task.  A
  // literal automaton keeps the eager SFA small (dense random DFAs explode
  // in SFA states) — the fallback density is forced by the threshold, not
  // by the automaton.
  const auto entry = testing::literal_entry(9, 6, 3, 5, false);
  const Dfa& dfa = entry.dfa;
  BuildOptions build;
  build.keep_mappings = true;
  const Sfa sfa = build_sfa(dfa, BuildMethod::kTransposed, build);
  const auto input = high_entropy_input(123, dfa.num_symbols(), 900);
  scan::NarrowedOptions options;
  options.shrink_threshold = 0.0;
  for (unsigned chunks : {2u, 3u, 6u}) {
    expect_exact(dfa, input, chunks, options, &sfa, nullptr, "sfa fallback");
    expect_exact(dfa, input, chunks, options, nullptr, nullptr,
                 "full-simulation fallback");
    scan::NarrowedEngine engine(dfa, options, &sfa);
    scan::NarrowedEngine eager_free(dfa, options);
    const auto ranges = detail::chunk_ranges(input.size(), chunks);
    engine.scan_chunks(input.data(), ranges, scan::default_executor());
    eager_free.scan_chunks(input.data(), ranges, scan::default_executor());
    scan::EagerEngine eager(sfa, &dfa);
    eager.scan_chunks(input.data(), ranges, scan::default_executor());
    EXPECT_EQ(engine.fallback_chunks(), chunks - 1);
    EXPECT_EQ(engine.narrowed_chunks(), 0u);
    for (unsigned c = 0; c < chunks; ++c)
      for (Dfa::StateId q = 0; q < dfa.size(); ++q) {
        EXPECT_EQ(engine.chunk_exit(c, q, input.data()),
                  eager.chunk_exit(c, q, input.data()))
            << "chunk " << c << " entry " << q;
        EXPECT_EQ(eager_free.chunk_exit(c, q, input.data()),
                  eager.chunk_exit(c, q, input.data()))
            << "chunk " << c << " entry " << q;
      }
  }
}

// ---- input classes ---------------------------------------------------------

TEST(NarrowedMatch, ShrinksEntrySetsOnLowEntropyInput) {
  // Literal match-anywhere automata contract hard: a boundary symbol's
  // reach is the handful of trie nodes labeled with it.  On repetitive
  // text, narrowing must engage on every chunk and simulate far fewer
  // states than the n-per-chunk full scheme.
  const auto entry = testing::literal_entry(33, 8, 3, 8, true);
  const Dfa& dfa = entry.dfa;
  const auto input = low_entropy_input(42, dfa.num_symbols(), 2000);
  const unsigned chunks = 8;
  scan::NarrowedOptions options;
  options.peek_k = 2;
  scan::NarrowedEngine engine(dfa, options);
  const auto ranges = detail::chunk_ranges(input.size(), chunks);
  engine.scan_chunks(input.data(), ranges, scan::default_executor());
  EXPECT_EQ(engine.fallback_chunks(), 0u);
  EXPECT_EQ(engine.narrowed_chunks(), chunks - 1);
  // Strictly fewer states than the full scheme would simulate...
  EXPECT_LT(engine.entry_states_simulated(),
            static_cast<std::uint64_t>(chunks - 1) * dfa.size());
  // ...and at most the widest reachable set per chunk.
  EXPECT_LE(engine.entry_states_simulated(),
            static_cast<std::uint64_t>(chunks - 1) *
                engine.reach().max_set_size());
  expect_exact(dfa, input, chunks, options, nullptr, nullptr, "low entropy");
}

TEST(NarrowedMatch, FallsBackOnAdversarialInput) {
  // A dense random DFA's symbol images hold ~(1 - 1/e) n states; the
  // adversarial generator picks the widest ones, so no boundary shrinks
  // below the default threshold and every narrowable chunk falls back —
  // while staying exact.
  const auto entry = testing::random_dfa_entry(57, 32, 4);
  const Dfa& dfa = entry.dfa;
  const ReachTable table = compute_reach_table(dfa);
  ASSERT_GT(table.max_set_size(), dfa.size() / 2u)
      << "corpus seed no longer produces a dense automaton";
  const auto input = adversarial_input(dfa, 91, 1600);
  const unsigned chunks = 8;
  scan::NarrowedOptions options;  // default threshold 0.5
  scan::NarrowedEngine engine(dfa, options, nullptr, &table);
  const auto ranges = detail::chunk_ranges(input.size(), chunks);
  engine.scan_chunks(input.data(), ranges, scan::default_executor());
  EXPECT_EQ(engine.narrowed_chunks(), 0u);
  EXPECT_EQ(engine.fallback_chunks(), chunks - 1);
  expect_exact(dfa, input, chunks, options, nullptr, &table, "adversarial");
}

// ---- chunks <= 1 and peek-k edges ------------------------------------------

TEST(NarrowedMatch, SingleChunkIsBitForBitSequential) {
  const auto entry = testing::random_dfa_entry(13, 9, 3);
  const Dfa& dfa = entry.dfa;
  for (const auto& input : entry.inputs) {
    for (unsigned peek : {0u, 2u, 64u}) {
      scan::NarrowedOptions options;
      options.peek_k = peek;
      expect_exact(dfa, input, 1, options, nullptr, nullptr, "single chunk");
    }
  }
}

TEST(NarrowedMatch, PeekKLongerThanChunkIsClamped) {
  // 8 chunks of ~9 symbols with peek_k 64: every peek window exceeds its
  // chunk, so the whole chunk is consumed by set-image composition and the
  // partial vector maps post-chunk states to themselves.
  const auto entry = testing::random_dfa_entry(17, 10, 3);
  const Dfa& dfa = entry.dfa;
  const auto input = high_entropy_input(5, dfa.num_symbols(), 75);
  scan::NarrowedOptions options;
  options.peek_k = 64;
  options.shrink_threshold = 1.0;
  expect_exact(dfa, input, 8, options, nullptr, nullptr, "peek > chunk");
}

TEST(NarrowedMatch, MoreChunksThanSymbolsYieldsEmptyChunks) {
  // len < chunks: chunk_ranges degenerates to empty prefixes + one real
  // chunk; empty chunks at position 0 must read f_start (identity), not
  // data[-1].
  const auto entry = testing::random_dfa_entry(23, 7, 2);
  const Dfa& dfa = entry.dfa;
  for (std::size_t len : {0u, 1u, 3u}) {
    const auto input = high_entropy_input(len + 1, dfa.num_symbols(), len);
    for (unsigned chunks : {2u, 5u}) {
      scan::NarrowedOptions options;
      options.peek_k = 2;
      expect_exact(dfa, input, chunks, options, nullptr, nullptr,
                   "empty chunks");
    }
  }
}

// ---- fuzz ------------------------------------------------------------------

TEST(NarrowedMatch, FuzzAgainstSequentialReference) {
  const int iters = fuzz_iters(120);
  Xoshiro256 rng(0xBADC0FFEE);
  for (int i = 0; i < iters; ++i) {
    RandomDfaOptions dopt;
    dopt.num_states = 2 + static_cast<std::uint32_t>(rng.below(20));
    dopt.num_symbols = 1 + static_cast<unsigned>(rng.below(6));
    dopt.seed = rng.next();
    const Dfa dfa = random_dfa(dopt);
    const std::size_t len = rng.below(400);
    std::vector<Symbol> input(len);
    for (auto& s : input)
      s = static_cast<Symbol>(rng.below(dopt.num_symbols));
    scan::NarrowedOptions options;
    options.peek_k = static_cast<unsigned>(rng.below(10));
    const double thresholds[] = {0.0, 0.3, 0.5, 1.0};
    options.shrink_threshold = thresholds[rng.below(4)];
    const unsigned chunks = 1 + static_cast<unsigned>(rng.below(6));
    expect_exact(dfa, input, chunks, options, nullptr, nullptr, "fuzz");
  }
}

// ---- shared reach table under concurrency ----------------------------------

TEST(NarrowedMatch, EightWorkersShareOnePrecomputedReachTable) {
  // One immutable table, eight caller threads, each with its own engines
  // dispatching into the shared default executor (the concurrent-sessions
  // pattern of ExecutorStress).  Exactness per thread, zero misses.
  const auto entry = testing::literal_entry(61, 6, 4, 5, false);
  const Dfa& dfa = entry.dfa;
  const ReachTable table = compute_reach_table(dfa);
  constexpr int kWorkers = 8;
  const int rounds = std::max(2, fuzz_iters(30) / 10);
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      Xoshiro256 rng(0x5EED0000 + static_cast<std::uint64_t>(w));
      for (int r = 0; r < rounds; ++r) {
        const std::size_t len = 64 + rng.below(512);
        std::vector<Symbol> input(len);
        for (auto& s : input)
          s = static_cast<Symbol>(rng.below(dfa.num_symbols()));
        scan::NarrowedOptions options;
        options.peek_k = static_cast<unsigned>(rng.below(6));
        scan::NarrowedEngine engine(dfa, options, nullptr, &table);
        const unsigned chunks = 2 + static_cast<unsigned>(rng.below(5));
        const MatchResult got = scan::run_accept(
            engine, scan::default_executor(), input.data(), input.size(),
            chunks);
        const MatchResult ref = match_sequential(dfa, input);
        if (got.accepted != ref.accepted ||
            got.final_dfa_state != ref.final_dfa_state ||
            engine.feasible_misses() != 0)
          failures.fetch_add(1);
        scan::NarrowedEngine counter(dfa, options, nullptr, &table);
        if (scan::run_count(counter, scan::default_executor(), input.data(),
                            input.size(), chunks) !=
            reference_count(dfa, input))
          failures.fetch_add(1);
      }
    });
  }
  for (auto& th : workers) th.join();
  EXPECT_EQ(failures.load(), 0);
}

// ---- wrappers --------------------------------------------------------------

TEST(NarrowedMatch, WrapperReportsChunkAccounting) {
  const auto entry = testing::literal_entry(73, 8, 3, 6, false);
  const Dfa& dfa = entry.dfa;
  const auto input = low_entropy_input(7, dfa.num_symbols(), 1024);
  NarrowedMatchOptions options;
  options.peek_k = 2;
  const NarrowedResult r = match_narrowed(dfa, input, 4, options);
  EXPECT_EQ(r.chunks, 4u);
  EXPECT_EQ(r.narrowed_chunks + r.fallback_chunks, 3u);
  EXPECT_EQ(r.result.accepted, match_sequential(dfa, input).accepted);
  const NarrowedCountResult c = count_matches_narrowed(dfa, input, 4, options);
  EXPECT_EQ(c.count, reference_count(dfa, input));
  EXPECT_EQ(c.chunks, 4u);
}

}  // namespace
}  // namespace sfa
