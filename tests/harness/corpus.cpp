#include "harness/corpus.hpp"

#include <algorithm>
#include <stdexcept>

#include "sfa/automata/ops.hpp"
#include "sfa/automata/random_dfa.hpp"
#include "sfa/automata/regex_parser.hpp"
#include "sfa/classic/aho_corasick.hpp"
#include "sfa/core/build.hpp"
#include "sfa/prosite/patterns.hpp"
#include "sfa/prosite/prosite_parser.hpp"
#include "sfa/support/rng.hpp"

namespace sfa {
namespace testing {

namespace {

/// The state-explosion guard: corpus entries must stay cheap for EVERY
/// builder variant, so reject DFAs whose SFA exceeds the budget.  The hashed
/// sequential builder is the cheapest exact way to count SFA states.
bool sfa_within_budget(const Dfa& dfa, std::uint64_t max_states) {
  BuildOptions opt;
  opt.keep_mappings = false;
  opt.max_states = max_states;
  try {
    build_sfa_hashed(dfa, opt);
    return true;
  } catch (const std::runtime_error&) {
    return false;
  }
}

std::vector<Symbol> random_word(Xoshiro256& rng, unsigned k, std::size_t len) {
  std::vector<Symbol> w(len);
  for (auto& s : w) s = static_cast<Symbol>(rng.below(k));
  return w;
}

}  // namespace

std::vector<std::vector<Symbol>> make_inputs(std::uint64_t seed, unsigned k,
                                             std::size_t count,
                                             std::size_t max_length) {
  Xoshiro256 rng(seed);
  std::vector<std::vector<Symbol>> inputs;
  inputs.emplace_back();  // the empty input, always
  for (std::size_t i = 1; i < count; ++i) {
    // Sweep short lengths first (divergences near the start state), then
    // uniformly random longer inputs.
    const std::size_t len =
        i <= 3 ? i : 1 + rng.below(std::max<std::size_t>(max_length, 2) - 1);
    inputs.push_back(random_word(rng, k, len));
  }
  return inputs;
}

CorpusEntry random_dfa_entry(std::uint64_t seed, std::uint32_t num_states,
                             unsigned num_symbols,
                             const CorpusOptions& options) {
  RandomDfaOptions ropt;
  ropt.num_states = num_states;
  ropt.num_symbols = num_symbols;
  ropt.accept_fraction = 0.3;
  ropt.seed = seed;

  CorpusEntry e;
  e.name = "rand/seed=" + std::to_string(seed) +
           ",n=" + std::to_string(num_states) + ",k=" + std::to_string(num_symbols);
  e.seed = seed;
  e.num_symbols = num_symbols;
  e.dfa = random_dfa(ropt);
  e.inputs = make_inputs(seed ^ 0x1234567, num_symbols,
                         options.inputs_per_entry, options.max_input_length);
  e.regenerate = [ropt](std::uint32_t n) {
    RandomDfaOptions smaller = ropt;
    smaller.num_states = std::max<std::uint32_t>(n, 1);
    return random_dfa(smaller);
  };
  return e;
}

CorpusEntry literal_entry(std::uint64_t seed, unsigned num_symbols,
                          std::size_t num_patterns, std::size_t pattern_length,
                          bool uniform_length, const CorpusOptions& options) {
  Xoshiro256 rng(seed);
  std::vector<std::vector<Symbol>> patterns;
  for (std::size_t p = 0; p < num_patterns; ++p) {
    const std::size_t len =
        uniform_length ? pattern_length : 1 + rng.below(pattern_length);
    std::vector<Symbol> pat = random_word(rng, num_symbols, std::max<std::size_t>(len, 1));
    if (std::find(patterns.begin(), patterns.end(), pat) == patterns.end())
      patterns.push_back(std::move(pat));
  }

  CorpusEntry e;
  e.name = std::string("literal/seed=") + std::to_string(seed) +
           ",k=" + std::to_string(num_symbols) +
           ",p=" + std::to_string(patterns.size()) +
           (uniform_length ? ",uniform" : ",mixed");
  e.seed = seed;
  e.num_symbols = num_symbols;
  e.dfa = AhoCorasick(patterns, num_symbols).to_dfa();
  e.literal_patterns = patterns;
  e.inputs = make_inputs(seed ^ 0x9e3779b9, num_symbols,
                         options.inputs_per_entry, options.max_input_length);
  // Plant pattern occurrences so the positive matcher paths are exercised
  // (purely random text rarely contains a length-5 pattern).
  for (std::size_t i = 0; i < patterns.size() && i + 1 < e.inputs.size(); ++i) {
    std::vector<Symbol>& text = e.inputs[i + 1];
    const std::vector<Symbol>& pat = patterns[i % patterns.size()];
    const std::size_t at = text.empty() ? 0 : rng.below(text.size() + 1);
    text.insert(text.begin() + static_cast<std::ptrdiff_t>(at), pat.begin(),
                pat.end());
  }
  return e;
}

CorpusEntry empty_language_entry(unsigned num_symbols) {
  Dfa dfa(num_symbols);
  const Dfa::StateId q = dfa.add_state(false);
  for (unsigned s = 0; s < num_symbols; ++s)
    dfa.set_transition(q, static_cast<Symbol>(s), q);
  dfa.set_start(q);

  CorpusEntry e;
  e.name = "edge/empty-language,k=" + std::to_string(num_symbols);
  e.num_symbols = num_symbols;
  e.dfa = std::move(dfa);
  e.inputs = make_inputs(0xE0, num_symbols, 6, 32);
  return e;
}

CorpusEntry universal_language_entry(unsigned num_symbols) {
  Dfa dfa(num_symbols);
  const Dfa::StateId q = dfa.add_state(true);
  for (unsigned s = 0; s < num_symbols; ++s)
    dfa.set_transition(q, static_cast<Symbol>(s), q);
  dfa.set_start(q);

  CorpusEntry e;
  e.name = "edge/universal,k=" + std::to_string(num_symbols);
  e.num_symbols = num_symbols;
  e.dfa = std::move(dfa);
  e.inputs = make_inputs(0xE1, num_symbols, 6, 32);
  return e;
}

CorpusEntry empty_string_only_entry(unsigned num_symbols) {
  Dfa dfa(num_symbols);
  const Dfa::StateId accept = dfa.add_state(true);
  const Dfa::StateId sink = dfa.add_state(false);
  for (unsigned s = 0; s < num_symbols; ++s) {
    dfa.set_transition(accept, static_cast<Symbol>(s), sink);
    dfa.set_transition(sink, static_cast<Symbol>(s), sink);
  }
  dfa.set_start(accept);

  CorpusEntry e;
  e.name = "edge/empty-string-only,k=" + std::to_string(num_symbols);
  e.num_symbols = num_symbols;
  e.dfa = std::move(dfa);
  e.inputs = make_inputs(0xE2, num_symbols, 6, 32);
  return e;
}

std::vector<CorpusEntry> make_corpus(const CorpusOptions& options) {
  std::vector<CorpusEntry> corpus;
  SplitMix64 seeder(options.seed);

  if (options.include_edge_cases) {
    corpus.push_back(empty_language_entry());
    corpus.push_back(universal_language_entry());
    corpus.push_back(empty_string_only_entry());
    // 1-symbol alphabet: an SFA over |Σ|=1 is a single cycle with a tail —
    // degenerate transposition width.
    corpus.push_back(random_dfa_entry(seeder.next(), 7, 1, options));
    // Full 256-symbol alphabet: Symbol is uint8_t, so 256 is the widest the
    // cell kernels can see; keep the DFA tiny to bound the SFA.
    corpus.push_back(random_dfa_entry(seeder.next(), 4, 256, options));
    {
      // r-benchmark: one exact literal, error-sink-dominated (§III-C).
      const std::uint64_t seed = seeder.next();
      CorpusEntry e;
      e.name = "edge/r-benchmark,len=12";
      e.seed = seed;
      e.dfa = make_r_benchmark_dfa(12, seed);
      e.num_symbols = e.dfa.num_symbols();
      e.inputs = make_inputs(seed, e.num_symbols, options.inputs_per_entry,
                             options.max_input_length);
      e.regenerate = [seed](std::uint32_t n) {
        return make_r_benchmark_dfa(std::max<std::uint32_t>(n, 3) - 2, seed);
      };
      corpus.push_back(std::move(e));
    }
  }

  // Random DFAs across the (n, k) grid.  Random transformation monoids are
  // typically near n^n, so large (n, k) combos essentially never fit the SFA
  // budget — shrink n on repeated rejection to guarantee termination (n=2
  // always fits: at most 2^2 mappings).
  static constexpr unsigned kAlphabets[] = {2, 3, 4, 6, 8};
  for (std::size_t i = 0; i < options.random_dfa_entries; ++i) {
    const unsigned k = kAlphabets[i % (sizeof(kAlphabets) / sizeof(*kAlphabets))];
    std::uint32_t n = static_cast<std::uint32_t>(2 + (i * 7919) % 9);
    for (unsigned attempt = 0;; ++attempt) {
      CorpusEntry e = random_dfa_entry(seeder.next(), n, k, options);
      if (!sfa_within_budget(e.dfa, options.max_sfa_states)) {
        if (attempt % 2 == 1 && n > 2) --n;
        continue;
      }
      corpus.push_back(std::move(e));
      break;
    }
  }

  // Random regexes over DNA, compiled through the full pipeline
  // (parse -> Thompson NFA -> subset construction -> Hopcroft -> complete).
  const Alphabet& dna = Alphabet::dna();
  std::size_t regex_fails = 0;
  for (std::size_t i = 0; i < options.regex_entries;) {
    const std::uint64_t seed = seeder.next();
    Xoshiro256 rng(seed);
    static const char charset[] = "ACGTACGTACGT|*+?.()";
    // Shorter patterns after repeated budget rejections: termination.
    const std::size_t max_len = 10 - std::min<std::size_t>(regex_fails / 4, 8);
    std::string pattern(1 + rng.below(max_len), ' ');
    for (auto& c : pattern) c = charset[rng.below(sizeof(charset) - 1)];
    Dfa dfa(1);
    try {
      dfa = compile_pattern(pattern, dna);
    } catch (const RegexParseError&) {
      continue;  // try the next seed; deterministic either way
    }
    if (!sfa_within_budget(dfa, options.max_sfa_states)) {
      ++regex_fails;
      continue;
    }
    CorpusEntry e;
    e.name = "regex/seed=" + std::to_string(seed) + ",'" + pattern + "'";
    e.seed = seed;
    e.num_symbols = dna.size();
    e.dfa = std::move(dfa);
    e.inputs = make_inputs(seed ^ 0xABCD, dna.size(), options.inputs_per_entry,
                           options.max_input_length);
    corpus.push_back(std::move(e));
    ++i;
  }

  // Synthetic PROSITE motifs over the 20-letter amino alphabet.
  SyntheticPatternOptions popt;
  popt.min_elements = 2;
  popt.max_elements = 4;
  popt.max_repeat = 2;
  std::size_t prosite_fails = 0;
  for (std::size_t i = 0; i < options.prosite_entries;) {
    const std::uint64_t seed = seeder.next();
    // Simpler motifs after repeated budget rejections: termination.
    popt.max_elements = prosite_fails < 8 ? 4 : 2;
    const std::string pattern = synthetic_prosite_pattern(seed, popt);
    Dfa dfa(1);
    try {
      dfa = compile_prosite(pattern);
    } catch (const PrositeParseError&) {
      continue;
    }
    if (!sfa_within_budget(dfa, options.max_sfa_states)) {
      ++prosite_fails;
      continue;
    }
    CorpusEntry e;
    e.name = "prosite/seed=" + std::to_string(seed) + ",'" + pattern + "'";
    e.seed = seed;
    e.num_symbols = Alphabet::amino().size();
    e.dfa = std::move(dfa);
    e.inputs = make_inputs(seed ^ 0x50F7, e.num_symbols,
                           options.inputs_per_entry, options.max_input_length);
    corpus.push_back(std::move(e));
    ++i;
  }

  // Literal pattern sets (classic-matcher cross-checks).  Alternate between
  // uniform-length sets (Rabin–Karp applies) and mixed-length sets.
  for (std::size_t i = 0; i < options.literal_entries; ++i) {
    const unsigned k = 2 + static_cast<unsigned>(i % 4) * 2;  // 2,4,6,8
    const bool uniform = (i % 2) == 0;
    std::size_t num_patterns = 1 + i % 4, pattern_length = 2 + i % 4;
    for (unsigned attempt = 0;; ++attempt) {
      CorpusEntry e = literal_entry(seeder.next(), k, num_patterns,
                                    pattern_length, uniform, options);
      if (!sfa_within_budget(e.dfa, options.max_sfa_states)) {
        // Smaller pattern sets after repeated rejections: termination.
        if (attempt % 2 == 1) {
          if (pattern_length > 1)
            --pattern_length;
          else if (num_patterns > 1)
            --num_patterns;
        }
        continue;
      }
      corpus.push_back(std::move(e));
      break;
    }
  }

  return corpus;
}

}  // namespace testing
}  // namespace sfa
