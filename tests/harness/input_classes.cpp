#include "harness/input_classes.hpp"

#include <algorithm>

#include "sfa/core/build/reachable.hpp"
#include "sfa/support/rng.hpp"

namespace sfa {
namespace testing {

std::vector<Symbol> low_entropy_input(std::uint64_t seed, unsigned num_symbols,
                                      std::size_t len,
                                      unsigned effective_symbols,
                                      std::size_t motif_length) {
  Xoshiro256 rng(seed);
  const unsigned k = std::max(1u, std::min(effective_symbols, num_symbols));
  std::vector<Symbol> motif(std::max<std::size_t>(motif_length, 1));
  for (auto& s : motif) s = static_cast<Symbol>(rng.below(k));
  std::vector<Symbol> out(len);
  for (std::size_t i = 0; i < len; ++i) out[i] = motif[i % motif.size()];
  return out;
}

std::vector<Symbol> high_entropy_input(std::uint64_t seed,
                                       unsigned num_symbols, std::size_t len) {
  Xoshiro256 rng(seed);
  std::vector<Symbol> out(len);
  for (auto& s : out) s = static_cast<Symbol>(rng.below(num_symbols));
  return out;
}

std::vector<Symbol> adversarial_input(const Dfa& dfa, std::uint64_t seed,
                                      std::size_t len) {
  const ReachTable reach = compute_reach_table(dfa);
  std::size_t widest = 0;
  for (const auto& set : reach.per_symbol)
    widest = std::max(widest, set.size());
  std::vector<Symbol> candidates;
  for (unsigned a = 0; a < reach.num_symbols; ++a)
    if (reach.per_symbol[a].size() == widest)
      candidates.push_back(static_cast<Symbol>(a));
  Xoshiro256 rng(seed);
  std::vector<Symbol> out(len);
  for (auto& s : out) s = candidates[rng.below(candidates.size())];
  return out;
}

}  // namespace testing
}  // namespace sfa
