// Seeded differential-test corpora (docs/TESTING.md).
//
// A corpus entry bundles one complete DFA with a set of test inputs and
// enough provenance to reproduce and shrink it: the seed it was generated
// from, an optional regeneration hook (smaller instances of the same family,
// used by the oracle's DFA-size shrink loop), and — for entries whose DFA is
// the match-anywhere automaton of a literal pattern set — the patterns
// themselves, which let the oracle cross-check the classic matchers
// (Aho–Corasick, Boyer–Moore, Rabin–Karp) against the DFA/SFA results.
//
// Families: seeded random DFAs (arbitrary transition structure), random
// regexes over the DNA alphabet, synthetic PROSITE motifs, literal pattern
// sets, the r-benchmark DFA, and the |Σ|/language edge cases the builders
// historically get wrong (1-symbol and 256-symbol alphabets, the empty
// language, Σ*, and the empty-string-only language).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sfa/automata/alphabet.hpp"
#include "sfa/automata/dfa.hpp"

namespace sfa {
namespace testing {

struct CorpusEntry {
  std::string name;      // stable human-readable id, e.g. "rand/seed=7,n=9,k=4"
  std::uint64_t seed = 0;
  unsigned num_symbols = 0;
  Dfa dfa{1};
  /// Deterministic test inputs (always includes the empty input).
  std::vector<std::vector<Symbol>> inputs;
  /// Non-empty when `dfa` is the match-anywhere automaton of these literal
  /// patterns (symbol-encoded); enables the classic-matcher cross-checks.
  std::vector<std::vector<Symbol>> literal_patterns;
  /// Regenerates a smaller instance of the same family (same alphabet, fewer
  /// DFA states) for the oracle's shrink loop; null for fixed entries.
  std::function<Dfa(std::uint32_t num_states)> regenerate;
};

struct CorpusOptions {
  std::uint64_t seed = 1;
  std::size_t random_dfa_entries = 25;
  std::size_t regex_entries = 8;
  std::size_t prosite_entries = 5;
  std::size_t literal_entries = 10;
  bool include_edge_cases = true;  // |Σ|∈{1,256}, ∅, Σ*, {ε}, r-benchmark
  std::size_t inputs_per_entry = 10;
  std::size_t max_input_length = 96;
  /// Entries whose SFA would exceed this many states are regenerated with a
  /// different seed (keeps every builder variant fast and in memory).
  std::uint64_t max_sfa_states = 4096;
};

/// Deterministic: the same options always yield the same corpus.
std::vector<CorpusEntry> make_corpus(const CorpusOptions& options = {});

// --- Individual families (for tests that want one specific shape) ---------

CorpusEntry random_dfa_entry(std::uint64_t seed, std::uint32_t num_states,
                             unsigned num_symbols,
                             const CorpusOptions& options = {});
CorpusEntry literal_entry(std::uint64_t seed, unsigned num_symbols,
                          std::size_t num_patterns, std::size_t pattern_length,
                          bool uniform_length,
                          const CorpusOptions& options = {});
CorpusEntry empty_language_entry(unsigned num_symbols = 2);
CorpusEntry universal_language_entry(unsigned num_symbols = 2);
CorpusEntry empty_string_only_entry(unsigned num_symbols = 2);

/// Deterministic random inputs over a k-symbol alphabet; the first input is
/// always empty and lengths sweep 1 .. max_length.
std::vector<std::vector<Symbol>> make_inputs(std::uint64_t seed, unsigned k,
                                             std::size_t count,
                                             std::size_t max_length);

}  // namespace testing
}  // namespace sfa
