#include "harness/serve_oracle.hpp"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <set>
#include <sstream>

#include "harness/input_classes.hpp"
#include "sfa/core/match.hpp"
#include "sfa/support/rng.hpp"

namespace sfa {
namespace testing {

namespace {

/// True for the one response failure that is contract, not divergence: the
/// set exceeded the service's eager budget and the entry is DFA-only.
bool is_eager_budget_error(const serve::MatchResponse& r) {
  return r.error.find("eager SFA budget") != std::string::npos;
}

std::string positions_brief(const std::vector<std::size_t>& v) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < v.size() && i < 8; ++i)
    os << (i != 0 ? " " : "") << v[i];
  if (v.size() > 8) os << " ...";
  os << "] (" << v.size() << ')';
  return os.str();
}

}  // namespace

std::optional<std::vector<Symbol>> shortest_accepted_word(const Dfa& dfa) {
  if (dfa.accepting(dfa.start())) return std::vector<Symbol>{};
  std::vector<std::int64_t> parent(dfa.size(), -1);
  std::vector<Symbol> via(dfa.size(), 0);
  std::vector<bool> seen(dfa.size(), false);
  std::deque<Dfa::StateId> queue{dfa.start()};
  seen[dfa.start()] = true;
  while (!queue.empty()) {
    const Dfa::StateId q = queue.front();
    queue.pop_front();
    for (unsigned a = 0; a < dfa.num_symbols(); ++a) {
      const Dfa::StateId next = dfa.transition(q, static_cast<Symbol>(a));
      if (seen[next]) continue;
      seen[next] = true;
      parent[next] = q;
      via[next] = static_cast<Symbol>(a);
      if (dfa.accepting(next)) {
        std::vector<Symbol> word;
        for (Dfa::StateId s = next; s != dfa.start();
             s = static_cast<Dfa::StateId>(parent[s]))
          word.push_back(via[s]);
        std::reverse(word.begin(), word.end());
        return word;
      }
      queue.push_back(next);
    }
  }
  return std::nullopt;
}

ServeOracle::ServeOracle(ServeOracleOptions options)
    : options_(std::move(options)) {}

ServeOracle::Reference ServeOracle::reference_for(
    const std::vector<Dfa>& members, const std::vector<Symbol>& input) {
  Reference ref;
  std::set<std::size_t> positions;
  for (const Dfa& dfa : members) {
    Dfa::StateId q = dfa.start();
    for (std::size_t i = 0; i < input.size(); ++i) {
      q = dfa.transition(q, input[i]);
      if (dfa.accepting(q)) positions.insert(i + 1);
    }
    ref.accepted = ref.accepted || dfa.accepting(q);
    // The empty prefix: a member accepting the empty word matches "at"
    // position 0 of the whole-input accept, but find-all reports end
    // positions >= 1 only — mirror the union DFA's run_accept semantics.
    if (input.empty()) ref.accepted = ref.accepted || dfa.accepting(dfa.start());
  }
  ref.positions.assign(positions.begin(), positions.end());
  ref.count = ref.positions.size();
  ref.first = ref.positions.empty() ? kNoMatch : ref.positions.front();
  return ref;
}

std::optional<std::string> ServeOracle::divergence_on_input(
    serve::MatchService& service, std::uint64_t handle,
    const std::vector<Dfa>& members, const std::vector<Symbol>& input) const {
  const Reference ref = reference_for(members, input);

  static constexpr serve::TaskKind kTasks[] = {
      serve::TaskKind::kAccept, serve::TaskKind::kCount,
      serve::TaskKind::kFindFirst, serve::TaskKind::kFindAll};

  // One batch per probe: every engine×task cell rides the same dispatch,
  // which is both the API under test and a striping stress in itself.
  std::vector<serve::MatchRequest> batch;
  for (const serve::EngineChoice engine : options_.engines) {
    for (const serve::TaskKind task : kTasks) {
      serve::MatchRequest r;
      r.set = handle;
      r.engine = engine;
      r.task = task;
      r.data = input.data();
      r.len = input.size();
      r.chunks = options_.chunks;
      batch.push_back(r);
    }
  }
  const std::vector<serve::MatchResponse> responses =
      service.submit_batch(batch);

  for (std::size_t i = 0; i < batch.size(); ++i) {
    const serve::MatchRequest& req = batch[i];
    const serve::MatchResponse& resp = responses[i];
    const std::string cell = std::string(engine_choice_name(req.engine)) +
                             "/" + task_kind_name(req.task);
    if (!resp.ok) {
      if (req.engine == serve::EngineChoice::kEager &&
          is_eager_budget_error(resp))
        continue;  // DFA-only entry: the documented degradation, not a bug
      return cell + " failed: " + resp.error;
    }
    std::ostringstream os;
    switch (req.task) {
      case serve::TaskKind::kAccept:
        if (resp.accepted != ref.accepted) {
          os << cell << ": service=" << resp.accepted
             << " reference=" << ref.accepted;
          return os.str();
        }
        break;
      case serve::TaskKind::kCount:
        if (resp.count != ref.count) {
          os << cell << ": service=" << resp.count
             << " reference=" << ref.count;
          return os.str();
        }
        break;
      case serve::TaskKind::kFindFirst:
        if (resp.first != ref.first) {
          os << cell << ": service=" << static_cast<std::int64_t>(resp.first)
             << " reference=" << static_cast<std::int64_t>(ref.first);
          return os.str();
        }
        break;
      case serve::TaskKind::kFindAll:
        if (resp.positions != ref.positions) {
          os << cell << ": service=" << positions_brief(resp.positions)
             << " reference=" << positions_brief(ref.positions);
          return os.str();
        }
        break;
    }
  }
  return std::nullopt;
}

std::vector<std::vector<Symbol>> ServeOracle::make_probes(
    const std::vector<Dfa>& members, unsigned num_symbols) const {
  std::vector<std::vector<Symbol>> probes;
  probes.emplace_back();  // the empty input

  // Witnesses: each member's shortest accepted word, embedded in random
  // padding so the union must find it mid-stream, plus the bare word.
  Xoshiro256 rng(options_.probe_seed ^ 0x5EEDF00D);
  for (const Dfa& dfa : members) {
    const auto word = shortest_accepted_word(dfa);
    if (!word || word->empty()) continue;
    probes.push_back(*word);
    std::vector<Symbol> padded;
    const std::size_t lead = rng.below(24);
    for (std::size_t i = 0; i < lead; ++i)
      padded.push_back(static_cast<Symbol>(rng.below(num_symbols)));
    padded.insert(padded.end(), word->begin(), word->end());
    const std::size_t tail = rng.below(24);
    for (std::size_t i = 0; i < tail; ++i)
      padded.push_back(static_cast<Symbol>(rng.below(num_symbols)));
    probes.push_back(std::move(padded));
  }

  // Seeded random probes across the input-class spectrum; lengths spread
  // past chunks*64 so the real multi-chunk composition path runs.
  for (std::size_t i = 0; i < options_.probe_inputs; ++i) {
    const std::size_t len =
        1 + (options_.probe_seed + i * 977) % options_.max_probe_length;
    const std::uint64_t seed = options_.probe_seed + 0x9E3779B97F4A7C15ull * i;
    probes.push_back(i % 3 == 0
                         ? low_entropy_input(seed, num_symbols, len)
                         : high_entropy_input(seed, num_symbols, len));
  }
  return probes;
}

std::optional<Divergence> ServeOracle::check_serve(
    serve::MatchService& service, std::uint64_t handle,
    const std::string& set_name) const {
  const std::vector<serve::PatternSpec> specs = service.set_patterns(handle);
  if (specs.empty())
    throw std::invalid_argument("check_serve: unknown handle");

  std::vector<Dfa> members;
  members.reserve(specs.size());
  for (const serve::PatternSpec& spec : specs)
    members.push_back(service.registry().compile_member(spec));

  const unsigned k = service.registry().alphabet().size();
  for (const std::vector<Symbol>& probe : make_probes(members, k)) {
    auto detail = divergence_on_input(service, handle, members, probe);
    if (!detail) continue;
    Divergence d;
    d.variant = "serve";
    d.entry = set_name;
    d.kind = "service";
    d.detail = *detail;
    d.seed = options_.probe_seed;
    d.input = probe;
    d.original_input_length = probe.size();
    if (options_.shrink) shrink_input(service, handle, members, d);
    if (options_.shrink_pattern_set) shrink_set(service, specs, members, d);
    return d;
  }
  return std::nullopt;
}

void ServeOracle::shrink_input(serve::MatchService& service,
                               std::uint64_t handle,
                               const std::vector<Dfa>& members,
                               Divergence& d) const {
  // Greedy window removal, halving the window until single symbols: same
  // scheme as the construction oracle's shrinker.  Every candidate re-runs
  // the full engine×task batch on the SAME handle, so cache-binding bugs
  // keep reproducing while the input shrinks.
  std::size_t rounds = 0;
  for (std::size_t window = std::max<std::size_t>(d.input.size() / 2, 1);
       window >= 1; window /= 2) {
    bool removed_any = true;
    while (removed_any && rounds < options_.max_shrink_rounds) {
      removed_any = false;
      for (std::size_t at = 0;
           at + window <= d.input.size() && rounds < options_.max_shrink_rounds;
           ++at) {
        std::vector<Symbol> candidate = d.input;
        candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(at),
                        candidate.begin() + static_cast<std::ptrdiff_t>(at + window));
        ++rounds;
        if (auto detail = divergence_on_input(service, handle, members, candidate)) {
          d.input = std::move(candidate);
          d.detail = *detail;
          ++d.shrink_steps;
          removed_any = true;
        }
      }
    }
    if (window == 1) break;
  }
}

void ServeOracle::shrink_set(serve::MatchService& service,
                             std::vector<serve::PatternSpec> specs,
                             const std::vector<Dfa>& members, Divergence& d) const {
  // Drop members one at a time while the divergence persists.  Each subset
  // re-registers under its own fingerprint (fresh cache entry), so this
  // minimizes genuine union/compilation bugs but intentionally does NOT
  // preserve poisoned-cache divergences — those stay attributed to the
  // full set, whose fingerprint is the corrupted key.
  std::vector<Dfa> live = members;
  bool shrunk = true;
  while (shrunk && specs.size() > 1) {
    shrunk = false;
    for (std::size_t drop = 0; drop < specs.size(); ++drop) {
      std::vector<serve::PatternSpec> subset;
      std::vector<Dfa> subset_members;
      for (std::size_t i = 0; i < specs.size(); ++i) {
        if (i == drop) continue;
        subset.push_back(specs[i]);
        subset_members.push_back(live[i]);
      }
      const std::uint64_t sub_handle = service.register_set(subset);
      if (auto detail =
              divergence_on_input(service, sub_handle, subset_members, d.input)) {
        specs = std::move(subset);
        live = std::move(subset_members);
        d.detail = *detail + " (set shrunk to " +
                   std::to_string(specs.size()) + " members)";
        ++d.shrink_steps;
        shrunk = true;
        break;
      }
    }
  }
}

}  // namespace testing
}  // namespace sfa
