#include "harness/oracle.hpp"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <memory>
#include <set>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include <functional>

#include "sfa/classic/aho_corasick.hpp"
#include "sfa/classic/boyer_moore.hpp"
#include "sfa/classic/rabin_karp.hpp"
#include "sfa/core/build/reachable.hpp"
#include "sfa/core/match.hpp"
#include "sfa/core/scan/engine.hpp"
#include "sfa/core/scan/tasks.hpp"
#include "sfa/support/rng.hpp"

namespace sfa {
namespace testing {

std::vector<BuilderVariant> default_variants() {
  std::vector<BuilderVariant> v;
  v.push_back({"baseline", BuildMethod::kBaseline, {}});
  v.push_back({"hashed", BuildMethod::kHashed, {}});
  v.push_back({"transposed", BuildMethod::kTransposed, {}});
  {
    BuildOptions o;
    o.num_threads = 1;
    v.push_back({"parallel-t1", BuildMethod::kParallel, o});
  }
  {
    BuildOptions o;
    o.num_threads = 4;
    v.push_back({"parallel-t4", BuildMethod::kParallel, o});
  }
  {
    // Force the three-phase compression rendezvous (§III-C): a tiny memory
    // threshold flips the phase almost immediately.
    BuildOptions o;
    o.num_threads = 3;
    o.memory_threshold_bytes = 1u << 12;
    v.push_back({"parallel-compress", BuildMethod::kParallel, o});
  }
  {
    // Sequential builders with the three-phase compression store: the same
    // tiny threshold exercises recompress-in-place plus compress-on-create.
    BuildOptions o;
    o.memory_threshold_bytes = 1u << 12;
    v.push_back({"hashed-compress", BuildMethod::kHashed, o});
    v.push_back({"transposed-compress", BuildMethod::kTransposed, o});
  }
  v.push_back({"probabilistic", BuildMethod::kProbabilistic, {}});
  return v;
}

std::vector<LazyVariant> default_lazy_variants() {
  std::vector<LazyVariant> v;
  LazyMatchOptions scalar;
  scalar.num_threads = 3;
  scalar.transposed_successors = false;
  v.push_back({"lazy-scalar", scalar});
  LazyMatchOptions transposed;
  transposed.num_threads = 3;
  v.push_back({"lazy-transposed", transposed});
  {
    // cap=1 refuses even the identity seed: every chunk runs the direct
    // DFA-simulation fallback, which must still be exact.
    LazyMatchOptions o = scalar;
    o.memory_cap_bytes = 1;
    v.push_back({"lazy-scalar-cap", o});
    o = transposed;
    o.memory_cap_bytes = 1;
    v.push_back({"lazy-transposed-cap", o});
  }
  {
    // Tiny threshold flips compress-on-create almost immediately, so the
    // walk exercises mixed raw/compressed probing and decompression.
    LazyMatchOptions o = transposed;
    o.memory_threshold_bytes = 1u << 12;
    v.push_back({"lazy-compress", o});
  }
  return v;
}

std::optional<std::string> check_isomorphic(const Sfa& a, const Sfa& b) {
  std::ostringstream os;
  if (a.num_states() != b.num_states()) {
    os << "state counts differ: " << a.num_states() << " vs " << b.num_states();
    return os.str();
  }
  if (a.num_symbols() != b.num_symbols()) {
    os << "alphabets differ: " << a.num_symbols() << " vs " << b.num_symbols();
    return os.str();
  }
  const unsigned k = a.num_symbols();
  constexpr Sfa::StateId kUnmapped = ~Sfa::StateId{0};
  std::vector<Sfa::StateId> a_to_b(a.num_states(), kUnmapped);
  std::vector<Sfa::StateId> b_to_a(b.num_states(), kUnmapped);
  a_to_b[a.start()] = b.start();
  b_to_a[b.start()] = a.start();
  std::deque<Sfa::StateId> frontier{a.start()};
  std::size_t paired = 1;
  while (!frontier.empty()) {
    const Sfa::StateId sa = frontier.front();
    frontier.pop_front();
    const Sfa::StateId sb = a_to_b[sa];
    if (a.accepting(sa) != b.accepting(sb)) {
      os << "accepting flag differs at pair (" << sa << ", " << sb << "): "
         << a.accepting(sa) << " vs " << b.accepting(sb);
      return os.str();
    }
    for (unsigned sym = 0; sym < k; ++sym) {
      const Sfa::StateId ta = a.transition(sa, static_cast<Symbol>(sym));
      const Sfa::StateId tb = b.transition(sb, static_cast<Symbol>(sym));
      if (a_to_b[ta] == kUnmapped && b_to_a[tb] == kUnmapped) {
        a_to_b[ta] = tb;
        b_to_a[tb] = ta;
        ++paired;
        frontier.push_back(ta);
      } else if (a_to_b[ta] != tb || b_to_a[tb] != ta) {
        os << "transition mismatch: delta_a(" << sa << ", " << sym << ") = "
           << ta << " but delta_b(" << sb << ", " << sym << ") = " << tb
           << " conflicts with established pairing";
        return os.str();
      }
    }
  }
  if (paired != a.num_states()) {
    os << "only " << paired << " of " << a.num_states()
       << " states reachable from the start pair";
    return os.str();
  }
  return std::nullopt;
}

std::string format_input(const std::vector<Symbol>& input) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < input.size(); ++i) {
    if (i) os << ' ';
    os << static_cast<unsigned>(input[i]);
  }
  os << ']';
  return os.str();
}

std::string Divergence::reproducer() const {
  std::ostringstream os;
  os << "variant=" << variant << " entry='" << entry << "' kind=" << kind
     << " seed=" << seed << " dfa_states=" << dfa_states << " input(len="
     << input.size() << ", was " << original_input_length
     << ")=" << format_input(input) << " :: " << detail;
  return os.str();
}

Oracle::Oracle(OracleOptions options, std::vector<BuilderVariant> variants)
    : options_(options),
      variants_(std::move(variants)),
      lazy_variants_(default_lazy_variants()) {}

// --- layer 1: product walk ---------------------------------------------------

std::optional<Divergence> Oracle::product_walk(const CorpusEntry& entry,
                                               const Sfa& sfa,
                                               const std::string& variant) const {
  const Dfa& dfa = entry.dfa;
  const unsigned k = dfa.num_symbols();
  const auto key = [](std::uint32_t s, std::uint32_t q) {
    return (static_cast<std::uint64_t>(s) << 32) | q;
  };
  struct Edge {
    std::uint64_t parent;
    Symbol symbol;
  };
  std::unordered_map<std::uint64_t, Edge> visited;

  const std::uint64_t root = key(sfa.start(), dfa.start());
  visited.emplace(root, Edge{root, 0});
  std::deque<std::uint64_t> frontier{root};

  const auto mismatch_at = [&](std::uint64_t at) {
    // Reconstruct the word leading to this pair — BFS order makes it the
    // SHORTEST diverging input.
    std::vector<Symbol> word;
    for (std::uint64_t cur = at; cur != root; cur = visited.at(cur).parent)
      word.push_back(visited.at(cur).symbol);
    std::reverse(word.begin(), word.end());

    Divergence d;
    d.variant = variant;
    d.entry = entry.name;
    d.kind = "acceptance";
    d.seed = entry.seed;
    d.dfa_states = dfa.size();
    d.input = word;
    d.original_input_length = word.size();
    std::ostringstream os;
    os << "SFA state " << (at >> 32) << " accepting="
       << sfa.accepting(static_cast<Sfa::StateId>(at >> 32)) << " but DFA state "
       << (at & 0xFFFFFFFFu) << " accepting="
       << dfa.accepting(static_cast<Dfa::StateId>(at & 0xFFFFFFFFu));
    d.detail = os.str();
    return d;
  };

  if (sfa.accepting(sfa.start()) != dfa.accepting(dfa.start()))
    return mismatch_at(root);

  while (!frontier.empty()) {
    const std::uint64_t cur = frontier.front();
    frontier.pop_front();
    const auto s = static_cast<Sfa::StateId>(cur >> 32);
    const auto q = static_cast<Dfa::StateId>(cur & 0xFFFFFFFFu);
    for (unsigned sym = 0; sym < k; ++sym) {
      const Sfa::StateId s2 = sfa.transition(s, static_cast<Symbol>(sym));
      const Dfa::StateId q2 = dfa.transition(q, static_cast<Symbol>(sym));
      const std::uint64_t next = key(s2, q2);
      if (visited.emplace(next, Edge{cur, static_cast<Symbol>(sym)}).second) {
        if (sfa.accepting(s2) != dfa.accepting(q2)) return mismatch_at(next);
        frontier.push_back(next);
      }
    }
  }
  return std::nullopt;
}

// --- layer 2: structural audit ----------------------------------------------

std::optional<Divergence> Oracle::structural(const CorpusEntry& entry,
                                             const Sfa& sfa,
                                             const std::string& variant) const {
  if (!sfa.has_mappings()) return std::nullopt;
  const Dfa& dfa = entry.dfa;
  const std::uint32_t n = dfa.size();
  const unsigned k = dfa.num_symbols();

  const auto fail = [&](const std::string& what) {
    Divergence d;
    d.variant = variant;
    d.entry = entry.name;
    d.kind = "structural";
    d.detail = what;
    d.seed = entry.seed;
    d.dfa_states = n;
    return d;
  };

  std::vector<std::uint32_t> f_s, f_t;
  sfa.mapping(sfa.start(), f_s);
  for (std::uint32_t q = 0; q < n; ++q)
    if (f_s[q] != q)
      return fail("start mapping is not the identity at q=" + std::to_string(q));

  for (Sfa::StateId s = 0; s < sfa.num_states(); ++s) {
    sfa.mapping(s, f_s);
    const bool want_accept = dfa.accepting(f_s[dfa.start()]);
    if (sfa.accepting(s) != want_accept)
      return fail("state " + std::to_string(s) + ": accepting flag " +
                  std::to_string(sfa.accepting(s)) + " but f_s(q0) maps to " +
                  (want_accept ? "an accepting" : "a rejecting") + " DFA state");
    for (unsigned sym = 0; sym < k; ++sym) {
      const Sfa::StateId t = sfa.transition(s, static_cast<Symbol>(sym));
      sfa.mapping(t, f_t);
      for (std::uint32_t q = 0; q < n; ++q) {
        const Dfa::StateId expect =
            dfa.transition(f_s[q], static_cast<Symbol>(sym));
        if (f_t[q] != expect)
          return fail("delta_s(" + std::to_string(s) + ", " +
                      std::to_string(sym) + ") = " + std::to_string(t) +
                      " but f(q=" + std::to_string(q) + ") is " +
                      std::to_string(f_t[q]) + ", expected " +
                      std::to_string(expect));
      }
    }
  }
  return std::nullopt;
}

// --- layer 3: matcher differential -------------------------------------------

std::vector<std::pair<std::string, Sfa>> Oracle::make_layout_columns(
    const Sfa& sfa) const {
  std::vector<std::pair<std::string, Sfa>> columns;
  if (!sfa.has_mappings()) return columns;
  columns.reserve(options_.table_layouts.size());
  for (const table::TableLayout layout : options_.table_layouts) {
    if (layout == sfa.table_layout()) continue;  // the baseline column
    Sfa converted = sfa;
    converted.convert_table_layout(layout);
    columns.emplace_back(std::string("eager-") + table::layout_name(layout),
                         std::move(converted));
  }
  return columns;
}

std::optional<std::string> Oracle::input_divergence(
    const CorpusEntry& entry, const Sfa& sfa,
    const std::vector<std::pair<std::string, Sfa>>& layout_columns,
    const std::vector<Symbol>& input) const {
  const Dfa& dfa = entry.dfa;
  std::ostringstream os;

  // Reference: the sequential DFA run (Fig. 1c).
  const MatchResult ref = match_sequential(dfa, input);

  // Sequential SFA run — acceptance via the F_s flag, no mappings needed.
  const Sfa::StateId s_final =
      sfa.run(sfa.start(), input.data(), input.size());
  if (sfa.accepting(s_final) != ref.accepted) {
    os << "sequential SFA accepting=" << sfa.accepting(s_final)
       << " vs DFA accepted=" << ref.accepted;
    return os.str();
  }

  // Reference answers for every task, from one sequential DFA scan.
  std::vector<std::size_t> ref_all;
  {
    Dfa::StateId q = dfa.start();
    for (std::size_t i = 0; i < input.size(); ++i) {
      q = dfa.transition(q, input[i]);
      if (dfa.accepting(q)) ref_all.push_back(i + 1);
    }
  }
  const std::size_t ref_count =
      dfa.count_accepting_prefixes(input.data(), input.size());
  const std::size_t ref_first = ref_all.empty() ? kNoMatch : ref_all.front();
  if (ref_all.size() != ref_count) {
    os << "count_accepting_prefixes=" << ref_count
       << " disagrees with the reference scan's " << ref_all.size()
       << " accepting positions";
    return os.str();
  }

  // Engine x task matrix over the scan substrate: every engine must answer
  // every task identically to the sequential reference, at every chunk
  // count.  The direct column routes the reference DFA itself through the
  // substrate, so it checks the shared task logic in isolation; eager,
  // speculative, and narrowed (one column per peek depth) then isolate
  // their chunk policies.
  const Dfa::StateId guess = pick_speculation_state(dfa, input);
  struct EngineCase {
    std::string name;
    std::function<std::unique_ptr<scan::ScanEngine>()> make;
  };
  std::vector<EngineCase> engines;
  engines.push_back(
      {"direct", [&] { return std::make_unique<scan::DirectEngine>(dfa); }});
  if (sfa.has_mappings())
    engines.push_back({"eager", [&] {
                         return std::make_unique<scan::EagerEngine>(sfa, &dfa);
                       }});
  engines.push_back({"speculative", [&] {
                       return std::make_unique<scan::SpeculativeEngine>(dfa,
                                                                        guess);
                     }});
  // One immutable reach table shared by every narrowed case below (the
  // sharing itself is part of what the matrix exercises).
  const ReachTable reach = compute_reach_table(dfa);
  for (const unsigned peek : options_.narrowed_peeks) {
    engines.push_back(
        {"narrowed-k" + std::to_string(peek), [&, peek] {
           scan::NarrowedOptions nopt;
           nopt.peek_k = peek;
           if (options_.inject_corrupt_feasible_set) {
             nopt.inject_corrupt_feasible_set = true;
             // Fallback chunks bypass the corrupted sets entirely; disable
             // the threshold so the teeth cannot be masked.
             nopt.shrink_threshold = 1.0;
           }
           return std::make_unique<scan::NarrowedEngine>(
               dfa, nopt, sfa.has_mappings() ? &sfa : nullptr, &reach);
         }});
  }

  // Layout columns: the SAME automaton re-encoded per δ-table layout
  // (pristine copies built once by make_layout_columns — conversion is too
  // expensive to repeat per probe).  Each converted copy must answer every
  // task exactly like the dense baseline (the plain eager column) — both
  // through the eager engine, whose chunk composition reads δ through
  // table.next(), and on a raw sequential walk.  The d2fa teeth redirect
  // one default pointer in a per-input corrupted copy; the matrix must
  // then report the broken chase.
  std::vector<std::pair<std::string, Sfa>> corrupt_sfas;
  if (options_.inject_corrupt_default_transition) {
    for (const auto& column : layout_columns) {
      if (column.second.table_layout() != table::TableLayout::kD2fa) continue;
      Sfa corrupted = column.second;
      // Land the corruption on a lookup THIS probe performs: trace the
      // pristine walk and hand its (state, symbol) pairs to the hook, so
      // the broken chase sits on an exercised path rather than in some far
      // corner of the state space.
      std::vector<std::pair<Sfa::StateId, std::uint8_t>> walk;
      walk.reserve(input.size());
      Sfa::StateId cur = corrupted.start();
      for (const Symbol sym : input) {
        walk.emplace_back(cur, static_cast<std::uint8_t>(sym));
        cur = corrupted.transition(cur, sym);
      }
      table::TransitionTable bad = corrupted.table();
      bad.inject_corrupt_default_transition(walk);
      std::vector<std::uint8_t> accepting(corrupted.num_states());
      for (Sfa::StateId s = 0; s < corrupted.num_states(); ++s)
        accepting[s] = corrupted.accepting(s) ? 1 : 0;
      corrupted.set_table(std::move(bad), std::move(accepting));
      corrupt_sfas.emplace_back(column.first, std::move(corrupted));
    }
  }
  const auto& layout_sfas =
      options_.inject_corrupt_default_transition ? corrupt_sfas
                                                 : layout_columns;
  for (const auto& lp : layout_sfas) {  // layout_sfas is complete: stable refs
    const Sfa& converted = lp.second;
    const Sfa::StateId got =
        converted.run(converted.start(), input.data(), input.size());
    if (converted.accepting(got) != ref.accepted) {
      os << lp.first << " sequential walk accepting="
         << converted.accepting(got) << " vs DFA accepted=" << ref.accepted;
      return os.str();
    }
    engines.push_back({lp.first, [&converted, &dfa] {
                         return std::make_unique<scan::EagerEngine>(converted,
                                                                    &dfa);
                       }});
  }

  scan::Executor& exec = scan::default_executor();
  for (const auto& ec : engines) {
    for (unsigned t = 1; t <= options_.match_threads; ++t) {
      const auto where = [&]() -> std::ostringstream& {
        os << ec.name << "-engine(chunks=" << t << ") ";
        return os;
      };
      {
        auto engine = ec.make();
        const MatchResult got =
            scan::run_accept(*engine, exec, input.data(), input.size(), t);
        if (got.accepted != ref.accepted ||
            got.final_dfa_state != ref.final_dfa_state) {
          where() << "accept (" << got.accepted << ", q="
                  << got.final_dfa_state << ") vs DFA (" << ref.accepted
                  << ", q=" << ref.final_dfa_state << ")";
          return os.str();
        }
      }
      {
        auto engine = ec.make();
        const std::size_t got =
            scan::run_count(*engine, exec, input.data(), input.size(), t);
        if (got != ref_count) {
          where() << "count=" << got << " vs reference " << ref_count;
          return os.str();
        }
      }
      {
        auto engine = ec.make();
        const std::size_t got =
            scan::run_find_first(*engine, exec, input.data(), input.size(), t);
        if (got != ref_first) {
          where() << "find-first=" << got << " vs reference " << ref_first;
          return os.str();
        }
      }
      {
        auto engine = ec.make();
        const std::vector<std::size_t> got =
            scan::run_find_all(*engine, exec, input.data(), input.size(), t);
        if (got != ref_all) {
          where() << "find-all returned " << got.size() << " positions vs "
                  << ref_all.size() << " in the reference scan";
          return os.str();
        }
      }
    }
  }

  // Public wrappers must agree with the substrate they delegate to.
  if (sfa.has_mappings()) {
    const MatchResult seq = match_sfa_sequential(sfa, input);
    if (seq.accepted != ref.accepted ||
        seq.final_dfa_state != ref.final_dfa_state) {
      os << "match_sfa_sequential (" << seq.accepted << ", q="
         << seq.final_dfa_state << ") vs DFA (" << ref.accepted << ", q="
         << ref.final_dfa_state << ")";
      return os.str();
    }
    const MatchResult par =
        match_sfa_parallel(sfa, input, options_.match_threads);
    if (par.accepted != ref.accepted ||
        par.final_dfa_state != ref.final_dfa_state) {
      os << "match_sfa_parallel (" << par.accepted << ", q="
         << par.final_dfa_state << ") vs DFA (" << ref.accepted << ", q="
         << ref.final_dfa_state << ")";
      return os.str();
    }
    const std::size_t par_count =
        count_matches_parallel(sfa, dfa, input, options_.match_threads);
    if (par_count != ref_count) {
      os << "count_matches_parallel=" << par_count
         << " vs count_accepting_prefixes=" << ref_count;
      return os.str();
    }
    const std::size_t par_first =
        find_first_match_parallel(sfa, dfa, input, options_.match_threads);
    if (par_first != ref_first) {
      os << "find_first_match_parallel=" << par_first << " vs reference scan="
         << ref_first;
      return os.str();
    }
    const std::vector<std::size_t> par_all =
        find_all_matches_parallel(sfa, dfa, input, options_.match_threads);
    if (par_all != ref_all) {
      os << "find_all_matches_parallel returned " << par_all.size()
         << " positions vs " << ref_all.size() << " in the reference scan";
      return os.str();
    }
  }
  {
    const SpeculativeResult spec =
        match_speculative(dfa, input, options_.match_threads);
    if (spec.result.accepted != ref.accepted ||
        spec.result.final_dfa_state != ref.final_dfa_state) {
      os << "match_speculative (" << spec.result.accepted << ", q="
         << spec.result.final_dfa_state << ") vs DFA (" << ref.accepted
         << ", q=" << ref.final_dfa_state << ")";
      return os.str();
    }
    if (spec.chunks != 0 && spec.rematched_chunks >= spec.chunks) {
      os << "match_speculative rematched " << spec.rematched_chunks << " of "
         << spec.chunks << " chunks (chunk 0 never speculates)";
      return os.str();
    }
  }

  // Classic matchers, when the DFA is the match-anywhere automaton of a
  // literal pattern set.  AhoCorasick::to_dfa() has ABSORBING semantics
  // (accepting = "a match ended at or before this position"), so the DFA's
  // accepting positions must be exactly the suffix of positions from the
  // first Aho–Corasick match end onward.
  if (!entry.literal_patterns.empty()) {
    const unsigned k = dfa.num_symbols();
    const AhoCorasick ac(entry.literal_patterns, k);

    std::set<std::size_t> dfa_ends;
    {
      Dfa::StateId q = dfa.start();
      for (std::size_t i = 0; i < input.size(); ++i) {
        q = dfa.transition(q, input[i]);
        if (dfa.accepting(q)) dfa_ends.insert(i + 1);
      }
    }
    const auto ac_matches = ac.find_all(input.data(), input.size());
    std::set<std::size_t> ac_ends;
    for (const auto& m : ac_matches) ac_ends.insert(m.end_position);
    std::set<std::size_t> absorbed;
    if (!ac_ends.empty())
      for (std::size_t i = *ac_ends.begin(); i <= input.size(); ++i)
        absorbed.insert(i);
    if (absorbed != dfa_ends) {
      os << "Aho-Corasick first match end "
         << (ac_ends.empty() ? std::string("none")
                             : std::to_string(*ac_ends.begin()))
         << " inconsistent with DFA accepting positions ("
         << dfa_ends.size() << " of " << input.size() << ")";
      return os.str();
    }

    for (std::size_t p = 0; p < entry.literal_patterns.size(); ++p) {
      const auto& pat = entry.literal_patterns[p];
      const BoyerMoore bm(pat, k);
      std::set<std::size_t> bm_ends;
      for (std::size_t at : bm.find_all(input.data(), input.size()))
        bm_ends.insert(at + pat.size());
      std::set<std::size_t> ac_pat_ends;
      for (const auto& m : ac_matches)
        if (m.pattern == p) ac_pat_ends.insert(m.end_position);
      if (bm_ends != ac_pat_ends) {
        os << "Boyer-Moore ends for pattern " << p << " ("
           << bm_ends.size() << ") differ from Aho-Corasick ("
           << ac_pat_ends.size() << ")";
        return os.str();
      }
    }

    const std::size_t m0 = entry.literal_patterns.front().size();
    const bool uniform = std::all_of(
        entry.literal_patterns.begin(), entry.literal_patterns.end(),
        [&](const auto& p) { return p.size() == m0; });
    if (uniform) {
      const RabinKarp rk(entry.literal_patterns, k);
      std::set<std::pair<std::size_t, std::uint32_t>> rk_hits, ac_hits;
      for (const auto& m : rk.find_all(input.data(), input.size()))
        rk_hits.insert({m.position + m0, m.pattern});
      for (const auto& m : ac_matches)
        ac_hits.insert({m.end_position, m.pattern});
      if (rk_hits != ac_hits) {
        os << "Rabin-Karp (end,pattern) pairs (" << rk_hits.size()
           << ") differ from Aho-Corasick (" << ac_hits.size() << ")";
        return os.str();
      }
    }
  }

  return std::nullopt;
}

std::vector<std::vector<Symbol>> Oracle::make_probes(
    const CorpusEntry& entry) const {
  std::vector<std::vector<Symbol>> probes = entry.inputs;
  if (options_.probe_inputs > 0 && entry.num_symbols > 0) {
    auto extra =
        make_inputs(options_.probe_seed ^ entry.seed, entry.num_symbols,
                    options_.probe_inputs, options_.max_probe_length);
    // Force one maximum-length probe so the true multi-chunk parallel
    // matching path runs (it falls back to sequential on short inputs).
    Xoshiro256 rng(options_.probe_seed ^ entry.seed ^ 0xFACE);
    std::vector<Symbol> longest(options_.max_probe_length);
    for (auto& s : longest) s = static_cast<Symbol>(rng.below(entry.num_symbols));
    extra.push_back(std::move(longest));
    probes.insert(probes.end(), extra.begin(), extra.end());
  }
  return probes;
}

std::optional<Divergence> Oracle::matcher_differential(
    const CorpusEntry& entry, const Sfa& sfa,
    const std::string& variant) const {
  const std::vector<std::vector<Symbol>> probes = make_probes(entry);
  const std::vector<std::pair<std::string, Sfa>> layout_columns =
      make_layout_columns(sfa);
  for (const auto& input : probes) {
    if (auto detail = input_divergence(entry, sfa, layout_columns, input)) {
      Divergence d;
      d.variant = variant;
      d.entry = entry.name;
      d.kind = "matcher";
      d.detail = *detail;
      d.seed = entry.seed;
      d.dfa_states = entry.dfa.size();
      d.input = input;
      d.original_input_length = input.size();
      if (options_.shrink) shrink_input(entry, sfa, layout_columns, d);
      return d;
    }
  }
  return std::nullopt;
}

// --- shrinking ---------------------------------------------------------------

namespace {

/// Greedy delta-debugging over one input: delete windows of shrinking size
/// while the divergence (as decided by `diverging`, which also yields the
/// refreshed detail) persists.  Shared by the eager and lazy shrinkers.
void greedy_shrink_input(
    const std::function<std::optional<std::string>(const std::vector<Symbol>&)>&
        diverging,
    std::size_t max_rounds, Divergence& d) {
  std::size_t rounds = 0;
  const auto diverges = [&](const std::vector<Symbol>& candidate) {
    ++rounds;
    return diverging(candidate).has_value();
  };

  std::vector<Symbol> best = d.input;
  for (std::size_t window = std::max<std::size_t>(best.size() / 2, 1);
       window >= 1; window /= 2) {
    bool progress = true;
    while (progress && rounds < max_rounds) {
      progress = false;
      for (std::size_t at = 0; at + window <= best.size();) {
        std::vector<Symbol> candidate = best;
        candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(at),
                        candidate.begin() + static_cast<std::ptrdiff_t>(at + window));
        if (diverges(candidate)) {
          best = std::move(candidate);
          progress = true;
        } else {
          at += window;
        }
        if (rounds >= max_rounds) break;
      }
    }
    if (window == 1) break;
  }
  if (diverges(best)) {
    // Refresh the detail to describe the minimized input.
    if (auto detail = diverging(best)) d.detail = *detail;
    d.input = std::move(best);
  }
  d.shrink_steps = rounds;
}

}  // namespace

void Oracle::shrink_input(
    const CorpusEntry& entry, const Sfa& sfa,
    const std::vector<std::pair<std::string, Sfa>>& layout_columns,
    Divergence& d) const {
  greedy_shrink_input(
      [&](const std::vector<Symbol>& candidate) {
        return input_divergence(entry, sfa, layout_columns, candidate);
      },
      options_.max_shrink_rounds, d);
}

void Oracle::shrink_dfa(const CorpusEntry& entry,
                        const BuilderVariant& variant, Divergence& d) const {
  if (!entry.regenerate) return;
  for (std::uint32_t n = entry.dfa.size() / 2; n >= 1; n /= 2) {
    CorpusEntry smaller = entry;
    smaller.dfa = entry.regenerate(n);
    smaller.name = entry.name + " (shrunk to n=" + std::to_string(smaller.dfa.size()) + ")";
    Sfa sfa;
    try {
      sfa = build_sfa(smaller.dfa, variant.method, variant.options);
    } catch (const std::exception&) {
      break;  // smaller instance does not build; keep the current reproducer
    }
    std::optional<Divergence> again = check_sfa(smaller, sfa, variant.name);
    if (!again) break;  // divergence vanished at this size; stop shrinking
    again->shrink_steps += d.shrink_steps + 1;
    again->original_input_length =
        std::max(d.original_input_length, again->original_input_length);
    d = *again;
    if (n == 1) break;
  }
}

// --- lazy-matcher differential -----------------------------------------------

std::optional<std::string> Oracle::lazy_input_divergence(
    const CorpusEntry& entry, const Sfa* eager, const LazyVariant& variant,
    const std::vector<Symbol>& input) const {
  const Dfa& dfa = entry.dfa;
  std::ostringstream os;

  // The lazy column of the engine x task matrix.  LazyScanEngine is private
  // to LazyMatcher, so it is driven through the public one-shot entry
  // points; find-all has no lazy form (the task is undefined there).
  // Reference: the sequential DFA run (Fig. 1c).
  const MatchResult ref = match_sequential(dfa, input);

  const MatchResult lazy = match_sfa_lazy(dfa, input, variant.options);
  if (lazy.accepted != ref.accepted ||
      lazy.final_dfa_state != ref.final_dfa_state) {
    os << "match_sfa_lazy (" << lazy.accepted << ", q=" << lazy.final_dfa_state
       << ") vs DFA (" << ref.accepted << ", q=" << ref.final_dfa_state << ")";
    return os.str();
  }

  const std::size_t ref_count =
      dfa.count_accepting_prefixes(input.data(), input.size());
  const std::size_t lazy_count =
      count_matches_lazy(dfa, input, variant.options);
  if (lazy_count != ref_count) {
    os << "count_matches_lazy=" << lazy_count
       << " vs count_accepting_prefixes=" << ref_count;
    return os.str();
  }

  std::size_t ref_first = kNoMatch;
  {
    Dfa::StateId q = dfa.start();
    for (std::size_t i = 0; i < input.size(); ++i) {
      q = dfa.transition(q, input[i]);
      if (dfa.accepting(q)) {
        ref_first = i + 1;
        break;
      }
    }
  }
  const std::size_t lazy_first =
      find_first_match_lazy(dfa, input, variant.options);
  if (lazy_first != ref_first) {
    os << "find_first_match_lazy=" << lazy_first << " vs reference scan="
       << ref_first;
    return os.str();
  }

  // Cross-check against the eager SFA matchers when the eager build exists
  // (it may legitimately have aborted on max_states).
  if (eager != nullptr && eager->has_mappings()) {
    const MatchResult em = match_sfa_parallel(*eager, input,
                                              options_.match_threads);
    if (em.accepted != lazy.accepted ||
        em.final_dfa_state != lazy.final_dfa_state) {
      os << "lazy (" << lazy.accepted << ", q=" << lazy.final_dfa_state
         << ") vs eager match_sfa_parallel (" << em.accepted << ", q="
         << em.final_dfa_state << ")";
      return os.str();
    }
    const std::size_t ec =
        count_matches_parallel(*eager, dfa, input, options_.match_threads);
    if (ec != lazy_count) {
      os << "count_matches_lazy=" << lazy_count
         << " vs eager count_matches_parallel=" << ec;
      return os.str();
    }
    const std::size_t ef =
        find_first_match_parallel(*eager, dfa, input, options_.match_threads);
    if (ef != lazy_first) {
      os << "find_first_match_lazy=" << lazy_first
         << " vs eager find_first_match_parallel=" << ef;
      return os.str();
    }
  }
  return std::nullopt;
}

std::optional<Divergence> Oracle::check_lazy_against(
    const CorpusEntry& entry, const Sfa* eager,
    const LazyVariant& variant) const {
  const std::vector<std::vector<Symbol>> probes = make_probes(entry);
  for (const auto& input : probes) {
    if (auto detail = lazy_input_divergence(entry, eager, variant, input)) {
      Divergence d;
      d.variant = variant.name;
      d.entry = entry.name;
      d.kind = "lazy";
      d.detail = *detail;
      d.seed = entry.seed;
      d.dfa_states = entry.dfa.size();
      d.input = input;
      d.original_input_length = input.size();
      if (options_.shrink)
        greedy_shrink_input(
            [&](const std::vector<Symbol>& candidate) {
              return lazy_input_divergence(entry, eager, variant, candidate);
            },
            options_.max_shrink_rounds, d);
      return d;
    }
  }
  return std::nullopt;
}

void Oracle::shrink_lazy_dfa(const CorpusEntry& entry,
                             const LazyVariant& variant, Divergence& d) const {
  if (!entry.regenerate) return;
  for (std::uint32_t n = entry.dfa.size() / 2; n >= 1; n /= 2) {
    CorpusEntry smaller = entry;
    smaller.dfa = entry.regenerate(n);
    smaller.name = entry.name + " (shrunk to n=" +
                   std::to_string(smaller.dfa.size()) + ")";
    Sfa eager;
    bool have_eager = true;
    try {
      eager = build_sfa_transposed(smaller.dfa);
    } catch (const std::exception&) {
      have_eager = false;
    }
    std::optional<Divergence> again =
        check_lazy_against(smaller, have_eager ? &eager : nullptr, variant);
    if (!again) break;  // divergence vanished at this size; stop shrinking
    again->shrink_steps += d.shrink_steps + 1;
    again->original_input_length =
        std::max(d.original_input_length, again->original_input_length);
    d = *again;
    if (n == 1) break;
  }
}

std::optional<Divergence> Oracle::check_lazy_variant(
    const CorpusEntry& entry, const LazyVariant& variant) const {
  Sfa eager;
  bool have_eager = true;
  try {
    eager = build_sfa_transposed(entry.dfa);
  } catch (const std::exception&) {
    have_eager = false;  // explosive SFA: the DFA walk alone anchors it
  }
  auto d = check_lazy_against(entry, have_eager ? &eager : nullptr, variant);
  if (d && options_.shrink) shrink_lazy_dfa(entry, variant, *d);
  return d;
}

std::optional<Divergence> Oracle::check_lazy(const CorpusEntry& entry) const {
  Sfa eager;
  bool have_eager = true;
  try {
    eager = build_sfa_transposed(entry.dfa);
  } catch (const std::exception&) {
    have_eager = false;
  }
  for (const LazyVariant& variant : lazy_variants_) {
    auto d = check_lazy_against(entry, have_eager ? &eager : nullptr, variant);
    if (d) {
      if (options_.shrink) shrink_lazy_dfa(entry, variant, *d);
      return d;
    }
  }
  return std::nullopt;
}

// --- public entry points -----------------------------------------------------

std::optional<Divergence> Oracle::check_sfa(const CorpusEntry& entry,
                                            const Sfa& sfa,
                                            const std::string& variant_name) const {
  if (auto d = product_walk(entry, sfa, variant_name)) return d;
  if (options_.structural_audit)
    if (auto d = structural(entry, sfa, variant_name)) return d;
  return matcher_differential(entry, sfa, variant_name);
}

std::optional<Divergence> Oracle::check(const CorpusEntry& entry) const {
  for (const BuilderVariant& variant : variants_) {
    Sfa sfa;
    try {
      sfa = build_sfa(entry.dfa, variant.method, variant.options);
    } catch (const std::exception& e) {
      Divergence d;
      d.variant = variant.name;
      d.entry = entry.name;
      d.kind = "build";
      d.detail = std::string("builder threw: ") + e.what();
      d.seed = entry.seed;
      d.dfa_states = entry.dfa.size();
      return d;
    }
    if (auto d = check_sfa(entry, sfa, variant.name)) {
      if (options_.shrink) shrink_dfa(entry, variant, *d);
      return d;
    }
  }
  return std::nullopt;
}

}  // namespace testing
}  // namespace sfa
