// Differential-testing oracle for SFA construction and matching
// (docs/TESTING.md).
//
// Every registered builder variant is run on the same corpus entry and
// cross-checked against the plain-DFA reference and against the classic
// matchers.  Three layers of checking, cheapest-complete first:
//
//   1. Product walk: BFS over reachable (SFA state, DFA state) pairs under
//      the same word.  Any acceptance disagreement yields the SHORTEST
//      diverging input by construction — a minimal reproducer for free.
//      This is a complete decision procedure for acceptance equivalence.
//   2. Structural audit (when mappings are retained): f_start = identity and
//      f_{δs(s,σ)}(q) = δ(f_s(q), σ) for every state, symbol and cell —
//      catches mapping corruption that acceptance alone cannot see.
//   3. Matcher differential: sequential DFA run vs sequential SFA run vs
//      parallel SFA chunk composition vs parallel counting / first-match,
//      plus Aho–Corasick / Boyer–Moore / Rabin–Karp on literal entries.
//      Divergences found here are minimized by a greedy shrink loop over
//      the input, and — for regenerable entries — over the DFA size.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "harness/corpus.hpp"
#include "sfa/core/build.hpp"
#include "sfa/core/lazy_matcher.hpp"
#include "sfa/core/sfa.hpp"

namespace sfa {
namespace testing {

struct BuilderVariant {
  std::string name;
  BuildMethod method;
  BuildOptions options;
};

/// All builder variants under test: the four paper variants (the parallel
/// one at 1 and 4 threads and once with the compression phase forced), the
/// sequential hashed/transposed builders with the compression store forced,
/// and the probabilistic builder.
std::vector<BuilderVariant> default_variants();

/// One lazy-matcher configuration under test.
struct LazyVariant {
  std::string name;
  LazyMatchOptions options;
};

/// The lazy matrix: {scalar, transposed} successors × {no cap, cap=1 (every
/// chunk on the direct-simulation fallback)}, plus compress-on-create via a
/// tiny memory threshold.
std::vector<LazyVariant> default_lazy_variants();

struct Divergence {
  std::string variant;        // builder variant (or ad-hoc label)
  std::string entry;          // corpus entry name
  std::string kind;           // "acceptance" | "structural" | "matcher"
  std::string detail;         // what disagreed with what
  std::uint64_t seed = 0;     // corpus entry seed
  std::vector<Symbol> input;  // minimized diverging input (may be empty)
  std::size_t original_input_length = 0;  // before shrinking
  std::uint32_t dfa_states = 0;           // after DFA-size shrinking
  std::size_t shrink_steps = 0;

  /// Human-readable reproduction recipe (seed, entry, minimized input).
  std::string reproducer() const;
};

struct OracleOptions {
  /// Extra random probe inputs per entry, on top of the entry's own.
  std::size_t probe_inputs = 24;
  /// ≥ 3*64 so match_sfa_parallel's real multi-chunk path runs (it falls
  /// back to sequential below num_threads*64 symbols).
  std::size_t max_probe_length = 224;
  std::uint64_t probe_seed = 0xD1FFD1FF;
  /// Thread counts exercised by the parallel matching checks.
  unsigned match_threads = 3;
  /// Peek depths of the narrowed engine column in the engine×task matrix
  /// (one engine case per depth).  Empty disables the column.
  std::vector<unsigned> narrowed_peeks = {0, 2, 8};
  /// Fault-injection teeth hook: corrupt the narrowed engines' reachable
  /// sets (and disable their fallback so the corruption cannot be masked)
  /// — the matrix must then catch the wrong answers.
  bool inject_corrupt_feasible_set = false;
  /// δ-table layout columns of the engine×task matrix: the SFA under test
  /// is re-encoded into each listed layout and the converted copy runs the
  /// full task set through the eager engine plus a raw sequential walk.
  /// Lookup must be layout-invariant, so every column answers like the
  /// dense baseline (the plain "eager" column).  Empty disables the
  /// columns.  Layouts equal to the SFA's current layout are skipped.
  std::vector<table::TableLayout> table_layouts = {
      table::TableLayout::kRowDedup, table::TableLayout::kD2fa};
  /// Fault-injection teeth hook for the d2fa column: redirect one default
  /// pointer in the converted copy (without repairing its exception list)
  /// — a broken default chase the matrix must then catch.
  bool inject_corrupt_default_transition = false;
  bool structural_audit = true;
  bool shrink = true;
  std::size_t max_shrink_rounds = 400;
};

class Oracle {
 public:
  explicit Oracle(OracleOptions options = {},
                  std::vector<BuilderVariant> variants = default_variants());

  const std::vector<BuilderVariant>& variants() const { return variants_; }

  /// Build every registered variant on the entry's DFA and cross-check.
  /// Returns the first divergence (minimized), or nullopt when all agree.
  std::optional<Divergence> check(const CorpusEntry& entry) const;

  /// Check one prebuilt SFA against the entry's DFA — used both internally
  /// and by fault-injection tests that tamper with a built SFA.
  std::optional<Divergence> check_sfa(const CorpusEntry& entry, const Sfa& sfa,
                                      const std::string& variant_name) const;

  /// Lazy-matcher differential over every registered lazy variant: lazy
  /// match / count / find-first must agree with the sequential DFA walk AND
  /// (when the eager transposed build succeeds — it may legitimately abort
  /// on max_states, which is the lazy matcher's reason to exist) with the
  /// eager SFA matchers, on the same probe set as the eager differential.
  /// Divergences are input-shrunk and DFA-shrunk like eager ones.
  std::optional<Divergence> check_lazy(const CorpusEntry& entry) const;

  /// One lazy variant only — also the fault-injection hook (pass a variant
  /// whose options set inject_corrupt_state).
  std::optional<Divergence> check_lazy_variant(const CorpusEntry& entry,
                                               const LazyVariant& variant) const;

 private:
  std::optional<Divergence> product_walk(const CorpusEntry& entry,
                                         const Sfa& sfa,
                                         const std::string& variant) const;
  std::optional<Divergence> structural(const CorpusEntry& entry, const Sfa& sfa,
                                       const std::string& variant) const;
  std::optional<Divergence> matcher_differential(
      const CorpusEntry& entry, const Sfa& sfa,
      const std::string& variant) const;
  /// The δ-table layout columns (options_.table_layouts): pristine
  /// converted copies of `sfa`, one per layout that differs from its
  /// current one.  Built once per matcher differential — conversion costs
  /// O(states × symbols) and must not run per probe.
  std::vector<std::pair<std::string, Sfa>> make_layout_columns(
      const Sfa& sfa) const;
  /// First matcher-level disagreement on one input, unshrunk.
  std::optional<std::string> input_divergence(
      const CorpusEntry& entry, const Sfa& sfa,
      const std::vector<std::pair<std::string, Sfa>>& layout_columns,
      const std::vector<Symbol>& input) const;
  void shrink_input(const CorpusEntry& entry, const Sfa& sfa,
                    const std::vector<std::pair<std::string, Sfa>>& layout_columns,
                    Divergence& d) const;
  void shrink_dfa(const CorpusEntry& entry, const BuilderVariant& variant,
                  Divergence& d) const;

  /// The entry's probe set (own inputs + seeded extras + one max-length
  /// probe) — shared by the eager and lazy differentials.
  std::vector<std::vector<Symbol>> make_probes(const CorpusEntry& entry) const;
  std::optional<Divergence> check_lazy_against(const CorpusEntry& entry,
                                               const Sfa* eager,
                                               const LazyVariant& variant) const;
  std::optional<std::string> lazy_input_divergence(
      const CorpusEntry& entry, const Sfa* eager, const LazyVariant& variant,
      const std::vector<Symbol>& input) const;
  void shrink_lazy_dfa(const CorpusEntry& entry, const LazyVariant& variant,
                       Divergence& d) const;

  OracleOptions options_;
  std::vector<BuilderVariant> variants_;
  std::vector<LazyVariant> lazy_variants_;
};

/// Format a symbol sequence as a compact reproducer string ("[3 1 0 2]").
std::string format_input(const std::vector<Symbol>& input);

/// Structural isomorphism of two SFAs: a lockstep BFS from the start states
/// must induce a bijection that preserves transitions and accepting flags.
/// Builders may number states differently (the parallel builder's order is
/// scheduling-dependent), but they must discover the SAME automaton up to
/// renumbering.  Returns a description of the first mismatch, or nullopt.
std::optional<std::string> check_isomorphic(const Sfa& a, const Sfa& b);

}  // namespace testing
}  // namespace sfa
