// Deterministic concurrency stress driver (docs/TESTING.md).
//
// Spawns a fixed team of threads and runs them through barrier-aligned
// phases: within a phase all threads hammer the structure under test
// concurrently; between phases everything is quiescent, which is where
// invariants can be checked without racing the checks themselves.  Each
// thread's operation sequence is drawn from its own Xoshiro256 stream seeded
// from (seed, tid, phase), so a failing run is reproducible from the single
// top-level seed even though the physical interleaving is up to the
// scheduler.  Designed to run under the `tsan` preset: thread counts stay
// high (≥8) while per-thread operation counts shrink via scaled_ops().
#pragma once

#include <cstdint>
#include <thread>
#include <vector>

#include "sfa/concurrent/barrier.hpp"
#include "sfa/support/rng.hpp"

namespace sfa {
namespace testing {

struct StressOptions {
  unsigned threads = 8;
  std::uint64_t seed = 1;
  /// Operations per thread per phase (pass through scaled_ops()).
  std::uint64_t ops_per_thread = 4000;
  unsigned phases = 3;
};

/// Sanitizer-aware workload scaling: instrumented builds interleave just as
/// aggressively with far fewer operations, so CI sanitizer jobs stay fast.
inline std::uint64_t scaled_ops(std::uint64_t requested) {
#if defined(SFA_SANITIZE_THREAD)
  return requested / 8 < 256 ? 256 : requested / 8;
#elif defined(SFA_SANITIZE_ADDRESS) || defined(SFA_SANITIZE_UNDEFINED)
  return requested / 4 < 256 ? 256 : requested / 4;
#else
  return requested;
#endif
}

/// Deterministic per-(seed, tid, phase) RNG stream.
inline Xoshiro256 stress_rng(std::uint64_t seed, unsigned tid, unsigned phase) {
  SplitMix64 mix(seed);
  const std::uint64_t a = mix.next(), b = mix.next();
  return Xoshiro256(a ^ (b * (tid + 1)) ^ (0x9e3779b97f4a7c15ull * (phase + 1)));
}

/// Runs `body(tid, phase, rng)` for every thread and phase.  All threads
/// enter a phase together and leave it together (SpinBarrier on both edges);
/// `between(phase)` — if provided — runs on thread 0 alone while the world
/// is stopped between phases, the place for invariant checks.
template <typename Body, typename Between>
void run_stress(const StressOptions& options, Body&& body, Between&& between) {
  const unsigned team_size = options.threads == 0 ? 1 : options.threads;
  SpinBarrier barrier(team_size);
  std::vector<std::thread> team;
  team.reserve(team_size);
  for (unsigned tid = 0; tid < team_size; ++tid) {
    team.emplace_back([&, tid] {
      for (unsigned phase = 0; phase < options.phases; ++phase) {
        barrier.wait();  // phase entry: everyone starts together
        Xoshiro256 rng = stress_rng(options.seed, tid, phase);
        body(tid, phase, rng);
        barrier.wait();  // phase exit: quiescence
        if (tid == 0) between(phase);
        barrier.wait();  // release the world after the check
      }
    });
  }
  for (auto& th : team) th.join();
}

template <typename Body>
void run_stress(const StressOptions& options, Body&& body) {
  run_stress(options, std::forward<Body>(body), [](unsigned) {});
}

}  // namespace testing
}  // namespace sfa
