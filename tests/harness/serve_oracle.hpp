// Differential service oracle (docs/TESTING.md, service layer).
//
// The MatchService answers pattern-SET questions with one union automaton
// per set, batched through one pool dispatch.  The serve oracle re-answers
// every question the slow, obviously-correct way — each member pattern
// compiled on its own and walked sequentially — and cross-checks the
// batched responses against the per-pattern union:
//
//   accept     =  OR of member whole-input accepts
//   find_all   =  positions where SOME member's walk accepts (members use
//                 the library's absorbing match-anywhere convention, so
//                 this is every position from the earliest member match on)
//   count      =  |find_all reference|
//   find_first =  min over members (kNoMatch when none)
//
// Every engine×task cell goes through MatchService::submit_batch, so the
// check covers the registry's union compilation, the SfaCache binding
// (fingerprint -> automaton — the corrupt-cache teeth live here), and the
// batch striping, not just the engines (those have their own oracle).
//
// Divergences are minimized twice: the input by the greedy window-removal
// shrink, and the pattern set by dropping members one at a time.  Set
// shrinking re-registers the subset (new fingerprint, fresh cache entry),
// so a divergence caused by a poisoned cache binding survives input
// shrinking but deliberately NOT set shrinking — the reproducer then names
// the full set, which is exactly the corrupted key.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "harness/oracle.hpp"
#include "sfa/serve/match_service.hpp"

namespace sfa {
namespace testing {

struct ServeOracleOptions {
  /// Seeded random probes per set, on top of the member-witness probes
  /// (shortest accepted word of each member embedded in random padding)
  /// and the empty input.
  std::size_t probe_inputs = 12;
  std::size_t max_probe_length = 224;
  std::uint64_t probe_seed = 0x5E12E0AC;
  /// Chunk count requested for every service-side scan.
  unsigned chunks = 3;
  /// Engine column of the engine×task matrix.  Eager cells are skipped
  /// (not failed) when the set legitimately exceeded the service's eager
  /// SFA budget — that degradation is contract, not divergence.
  std::vector<serve::EngineChoice> engines = {
      serve::EngineChoice::kEager, serve::EngineChoice::kLazy,
      serve::EngineChoice::kSpeculative, serve::EngineChoice::kNarrowed};
  bool shrink = true;
  bool shrink_pattern_set = true;
  std::size_t max_shrink_rounds = 400;
};

class ServeOracle {
 public:
  explicit ServeOracle(ServeOracleOptions options = {});

  /// Differentially check one registered set: every engine×task cell,
  /// batched, against the per-pattern sequential reference.  Returns the
  /// first divergence (input- and set-minimized), or nullopt.
  std::optional<Divergence> check_serve(serve::MatchService& service,
                                        std::uint64_t handle,
                                        const std::string& set_name) const;

 private:
  /// Per-pattern reference answers on one input.
  struct Reference {
    bool accepted = false;
    std::size_t count = 0;
    std::size_t first = 0;
    std::vector<std::size_t> positions;
  };
  static Reference reference_for(const std::vector<Dfa>& members,
                                 const std::vector<Symbol>& input);

  /// First engine×task disagreement on one input (one submit_batch call),
  /// or nullopt when the service agrees with the reference everywhere.
  std::optional<std::string> divergence_on_input(
      serve::MatchService& service, std::uint64_t handle,
      const std::vector<Dfa>& members, const std::vector<Symbol>& input) const;

  std::vector<std::vector<Symbol>> make_probes(
      const std::vector<Dfa>& members, unsigned num_symbols) const;

  void shrink_input(serve::MatchService& service, std::uint64_t handle,
                    const std::vector<Dfa>& members, Divergence& d) const;
  void shrink_set(serve::MatchService& service,
                  std::vector<serve::PatternSpec> specs,
                  const std::vector<Dfa>& members, Divergence& d) const;

  ServeOracleOptions options_;
};

/// Shortest word accepted by `dfa` (BFS over states), or nullopt when the
/// accepted language is empty.  The serve oracle embeds these as witness
/// probes; tests reuse it to build guaranteed-hit inputs.
std::optional<std::vector<Symbol>> shortest_accepted_word(const Dfa& dfa);

}  // namespace testing
}  // namespace sfa
