// Input-class corpus generators for the chunk-entry narrowing differential
// tests and benches.
//
// The NarrowedEngine's win depends on the INPUT as much as the DFA: a chunk
// boundary's feasible set is reach(boundary symbol) pushed through the
// peeked prefix, so repetitive text over a contracting automaton collapses
// to a handful of states, while symbols hand-picked to maximize |reach|
// defeat the narrowing and exercise the per-chunk fallback.  Three seeded
// generators cover the spectrum; the oracle, the fuzz tests, and
// bench_matching_breakeven's engine×input-class matrix all draw from them.
#pragma once

#include <cstdint>
#include <vector>

#include "sfa/automata/dfa.hpp"

namespace sfa {
namespace testing {

/// Low entropy: one seeded motif of `motif_length` symbols drawn from a
/// small effective alphabet (the first `effective_symbols` of the full k),
/// repeated to `len`.  Chunk boundaries land on few distinct symbols and
/// set-image composition collapses quickly.
std::vector<Symbol> low_entropy_input(std::uint64_t seed, unsigned num_symbols,
                                      std::size_t len,
                                      unsigned effective_symbols = 2,
                                      std::size_t motif_length = 8);

/// High entropy: uniform random over the full alphabet.
std::vector<Symbol> high_entropy_input(std::uint64_t seed,
                                       unsigned num_symbols, std::size_t len);

/// Adversarial for narrowing: every symbol is drawn (seeded) from the
/// argmax of |reach(a)| over `dfa`'s alphabet, so every chunk boundary
/// admits the largest feasible entry set the automaton can produce.
std::vector<Symbol> adversarial_input(const Dfa& dfa, std::uint64_t seed,
                                      std::size_t len);

}  // namespace testing
}  // namespace sfa
