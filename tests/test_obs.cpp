// Observability subsystem: tracing round-trips, the trace validator,
// metrics registry + exporters, stats export schemas, and BuildStats parity
// across every builder (ISSUE 2 satellites).
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>
#include <type_traits>
#include <vector>

#include "sfa/concurrent/counters.hpp"
#include "sfa/core/build.hpp"
#include "sfa/obs/json.hpp"
#include "sfa/obs/metrics.hpp"
#include "sfa/obs/stats_export.hpp"
#include "sfa/obs/trace.hpp"
#include "sfa/obs/trace_check.hpp"
#include "sfa/prosite/prosite_parser.hpp"

namespace {

using namespace sfa;

// ---- compile-time gating (satellite: SFA_TRACE=OFF is a true no-op) -------

#if !(defined(SFA_TRACE_ENABLED) && SFA_TRACE_ENABLED)
static_assert(std::is_empty_v<obs::ScopedSpan>,
              "with SFA_TRACE=OFF the instrumentation span type must stay an "
              "empty no-op");
static_assert(!obs::kTraceEnabled);
#else
static_assert(std::is_same_v<obs::ScopedSpan, obs::ScopedSpanImpl>);
static_assert(obs::kTraceEnabled);
#endif

// ---- JsonWriter ------------------------------------------------------------

TEST(JsonWriter, EscapesAndNests) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object();
  w.kv("quote\"back\\slash", "tab\there\nnl");
  w.key("arr").begin_array().value(std::uint64_t{1}).value(-2).value(true)
      .null().end_array();
  w.kv("ctrl", std::string_view("\x01", 1));
  w.end_object();
  EXPECT_EQ(os.str(),
            "{\"quote\\\"back\\\\slash\":\"tab\\there\\nnl\","
            "\"arr\":[1,-2,true,null],\"ctrl\":\"\\u0001\"}");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_array();
  w.value(0.5);
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.value(std::numeric_limits<double>::infinity());
  w.end_array();
  EXPECT_EQ(os.str(), "[0.5,null,null]");
}

// ---- trace recording + exporter + validator round-trip ---------------------

TEST(Trace, RoundTripsThroughValidator) {
  auto& collector = obs::TraceCollector::instance();
  collector.start();
  ASSERT_TRUE(collector.active());

  // A few threads, each with named track, nested spans, and instants —
  // driving the always-compiled API directly (works in any build).
  std::vector<std::thread> team;
  for (int t = 0; t < 3; ++t) {
    team.emplace_back([t] {
      obs::set_thread_name("test/worker " + std::to_string(t));
      obs::ScopedSpanImpl outer("build", "worker");
      outer.arg("tid", static_cast<std::uint64_t>(t));
      {
        obs::ScopedSpanImpl inner("build", "global-phase");
        obs::emit_instant("build", "steal", "victim", 1);
      }
      obs::emit_instant("build", "done");
    });
  }
  for (auto& th : team) th.join();
  collector.stop();
  ASSERT_FALSE(collector.active());

  std::ostringstream os;
  collector.write_chrome_json(os);
  const obs::TraceCheckResult r = obs::check_trace_json(os.str());
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.threads, 3u);
  EXPECT_EQ(r.worker_tracks, 3u);  // every thread carried "build" spans
  EXPECT_GE(r.spans, 6u);          // 2 spans per thread
  EXPECT_GE(r.events, 12u);        // + 2 instants + thread_name metadata each
}

TEST(Trace, InactiveCollectorRecordsNothing) {
  auto& collector = obs::TraceCollector::instance();
  ASSERT_FALSE(collector.active());
  obs::emit_instant("cat", "ignored");
  {
    obs::ScopedSpanImpl span("cat", "ignored");
  }
  collector.start();
  collector.stop();
  EXPECT_TRUE(collector.snapshot().empty());
}

TEST(Trace, DropsCoherentlyWhenBufferFull) {
  auto& collector = obs::TraceCollector::instance();
  collector.start(/*events_per_thread=*/8);
  for (int i = 0; i < 50; ++i) obs::emit_instant("cat", "e");
  collector.stop();
  const auto threads = collector.snapshot();
  ASSERT_EQ(threads.size(), 1u);
  EXPECT_EQ(threads[0].events.size(), 8u);
  EXPECT_EQ(threads[0].dropped, 42u);

  // The exporter marks the loss, and the result still validates.
  std::ostringstream os;
  collector.write_chrome_json(os);
  const obs::TraceCheckResult r = obs::check_trace_json(os.str());
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_NE(os.str().find("events-dropped"), std::string::npos);
}

TEST(Trace, RingModeKeepsNewestAndAccountsDropsCoherently) {
  // Ring mode wraps instead of dropping NEW events: the buffer retains the
  // NEWEST `events_per_thread` events and reports overwritten ones as
  // dropped.  Invariant either way: dropped + retained == total emitted.
  auto& collector = obs::TraceCollector::instance();
  obs::TraceConfig config;
  config.events_per_thread = 8;
  config.ring = true;
  collector.start(config);
  for (std::uint64_t i = 0; i < 50; ++i)
    obs::emit_instant("cat", "e", "i", i);
  collector.stop();
  const auto threads = collector.snapshot();
  ASSERT_EQ(threads.size(), 1u);
  EXPECT_EQ(threads[0].events.size(), 8u);
  EXPECT_EQ(threads[0].dropped, 42u);
  EXPECT_EQ(threads[0].dropped + threads[0].events.size(), 50u);

  // Newest events survive, reordered oldest-first: args 42..49.
  for (std::size_t i = 0; i < threads[0].events.size(); ++i)
    EXPECT_EQ(threads[0].events[i].args[0].value, 42u + i) << "slot " << i;

  // The exporter output still validates and still flags the loss.
  std::ostringstream os;
  collector.write_chrome_json(os);
  const obs::TraceCheckResult r = obs::check_trace_json(os.str());
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_NE(os.str().find("events-dropped"), std::string::npos);
}

TEST(Trace, RingModeBelowCapacityBehavesLikeDropMode) {
  auto& collector = obs::TraceCollector::instance();
  obs::TraceConfig config;
  config.events_per_thread = 8;
  config.ring = true;
  collector.start(config);
  for (std::uint64_t i = 0; i < 5; ++i) obs::emit_instant("cat", "e", "i", i);
  collector.stop();
  const auto threads = collector.snapshot();
  ASSERT_EQ(threads.size(), 1u);
  EXPECT_EQ(threads[0].events.size(), 5u);
  EXPECT_EQ(threads[0].dropped, 0u);
  for (std::size_t i = 0; i < 5; ++i)
    EXPECT_EQ(threads[0].events[i].args[0].value, i);
}

// ---- validator rejects malformed documents ---------------------------------

TEST(TraceCheck, RejectsMalformedJson) {
  EXPECT_FALSE(obs::check_trace_json("{").ok);
  EXPECT_FALSE(obs::check_trace_json("").ok);
  EXPECT_FALSE(obs::check_trace_json("42").ok);
  EXPECT_FALSE(obs::check_trace_json("{\"traceEvents\":{}}").ok);
}

TEST(TraceCheck, RejectsMissingFields) {
  // No tid.
  EXPECT_FALSE(obs::check_trace_json(
                   R"({"traceEvents":[{"ph":"i","pid":1,"name":"x","ts":0}]})")
                   .ok);
  // Span without dur.
  EXPECT_FALSE(
      obs::check_trace_json(
          R"({"traceEvents":[{"ph":"X","pid":1,"tid":1,"name":"x","ts":0}]})")
          .ok);
}

TEST(TraceCheck, RejectsNonMonotoneTimestamps) {
  const char* doc = R"({"traceEvents":[
    {"ph":"i","pid":1,"tid":7,"name":"a","ts":100,"s":"t"},
    {"ph":"i","pid":1,"tid":7,"name":"b","ts":50,"s":"t"}]})";
  const auto r = obs::check_trace_json(doc);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("went backwards"), std::string::npos) << r.error;
}

TEST(TraceCheck, RejectsPartiallyOverlappingSpans) {
  // [0,100) and [50,150) on one thread: neither disjoint nor nested.
  const char* doc = R"({"traceEvents":[
    {"ph":"X","pid":1,"tid":7,"name":"a","ts":0,"dur":100},
    {"ph":"X","pid":1,"tid":7,"name":"b","ts":50,"dur":100}]})";
  const auto r = obs::check_trace_json(doc);
  EXPECT_FALSE(r.ok);
}

TEST(TraceCheck, RequiresEngineArgOnMatchChunkSpans) {
  // A "match"-category chunk span must name its ScanEngine.
  const char* missing = R"({"traceEvents":[
    {"ph":"X","pid":1,"tid":7,"name":"chunk-advance","cat":"match",
     "ts":0,"dur":10}]})";
  auto r = obs::check_trace_json(missing);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("engine"), std::string::npos) << r.error;

  const char* bogus = R"({"traceEvents":[
    {"ph":"X","pid":1,"tid":7,"name":"chunk-count","cat":"match",
     "ts":0,"dur":10,"args":{"engine":9}}]})";
  r = obs::check_trace_json(bogus);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("engine"), std::string::npos) << r.error;

  const char* good = R"({"traceEvents":[
    {"ph":"X","pid":1,"tid":7,"name":"chunk-advance","cat":"match",
     "ts":0,"dur":10,"args":{"engine":1,"symbols":64}},
    {"ph":"X","pid":1,"tid":7,"name":"chunk-collect","cat":"match",
     "ts":20,"dur":10,"args":{"engine":2,"begin":0}},
    {"ph":"X","pid":1,"tid":7,"name":"compose","cat":"match",
     "ts":40,"dur":5}]})";
  r = obs::check_trace_json(good);
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.match_chunk_spans, 2u);  // "compose" is not a chunk span
}

TEST(TraceCheck, ValidatesOptionalSchedulerArg) {
  // Out-of-range scheduler id is a hard failure (the arg is optional, but
  // when present it must be a valid sched::Policy value).
  const char* bogus = R"({"traceEvents":[
    {"ph":"X","pid":1,"tid":7,"name":"chunk-advance","cat":"match",
     "ts":0,"dur":10,"args":{"engine":1,"scheduler":7}}]})";
  auto r = obs::check_trace_json(bogus);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("scheduler"), std::string::npos) << r.error;

  // Valid ids are tallied per policy; spans without the arg count nowhere.
  const char* good = R"({"traceEvents":[
    {"ph":"X","pid":1,"tid":7,"name":"chunk-advance","cat":"match",
     "ts":0,"dur":10,"args":{"engine":1,"scheduler":0}},
    {"ph":"X","pid":1,"tid":7,"name":"chunk-advance","cat":"match",
     "ts":20,"dur":10,"args":{"engine":1,"scheduler":1}},
    {"ph":"X","pid":1,"tid":7,"name":"chunk-advance","cat":"match",
     "ts":40,"dur":10,"args":{"engine":1,"scheduler":1}},
    {"ph":"X","pid":1,"tid":7,"name":"chunk-count","cat":"match",
     "ts":60,"dur":10,"args":{"engine":2}}]})";
  r = obs::check_trace_json(good);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.match_chunk_spans, 4u);
  EXPECT_EQ(r.match_chunk_spans_by_scheduler[0], 1u);
  EXPECT_EQ(r.match_chunk_spans_by_scheduler[1], 2u);
  EXPECT_EQ(r.match_chunk_spans_by_scheduler[2], 0u);
}

TEST(TraceCheck, CountsStripeCongruenceViolations) {
  // Two spans on tid 7 with stride 4 but task residues 1 and 2: under
  // static-stripe dispatch one worker never runs both.  The violation is
  // counted but does not flip ok — the CLI decides acceptability.
  const char* skewed = R"({"traceEvents":[
    {"ph":"X","pid":1,"tid":7,"name":"chunk-advance","cat":"match",
     "ts":0,"dur":10,"args":{"engine":1,"scheduler":1,"task":1,"stride":4}},
    {"ph":"X","pid":1,"tid":7,"name":"chunk-advance","cat":"match",
     "ts":20,"dur":10,"args":{"engine":1,"scheduler":1,"task":6,"stride":4}}]})";
  auto r = obs::check_trace_json(skewed);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.stripe_violations, 1u);
  EXPECT_FALSE(r.stripe_error.empty());

  // Congruent tasks on each thread: clean.  tid 7 runs residue 1, tid 8
  // runs residue 2 — the historical t%S binding.
  const char* clean = R"({"traceEvents":[
    {"ph":"X","pid":1,"tid":7,"name":"chunk-advance","cat":"match",
     "ts":0,"dur":10,"args":{"engine":1,"scheduler":0,"task":1,"stride":4}},
    {"ph":"X","pid":1,"tid":7,"name":"chunk-advance","cat":"match",
     "ts":20,"dur":10,"args":{"engine":1,"scheduler":0,"task":5,"stride":4}},
    {"ph":"X","pid":1,"tid":8,"name":"chunk-advance","cat":"match",
     "ts":0,"dur":10,"args":{"engine":1,"scheduler":0,"task":2,"stride":4}},
    {"ph":"X","pid":1,"tid":8,"name":"chunk-advance","cat":"match",
     "ts":20,"dur":10,"args":{"engine":1,"scheduler":0,"task":6,"stride":4}}]})";
  r = obs::check_trace_json(clean);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.stripe_violations, 0u);
  EXPECT_TRUE(r.stripe_error.empty());

  // Different strides on one thread form separate congruence groups (a
  // worker can serve jobs of different team sizes back to back).
  const char* two_strides = R"({"traceEvents":[
    {"ph":"X","pid":1,"tid":7,"name":"chunk-advance","cat":"match",
     "ts":0,"dur":10,"args":{"engine":1,"task":1,"stride":4}},
    {"ph":"X","pid":1,"tid":7,"name":"chunk-advance","cat":"match",
     "ts":20,"dur":10,"args":{"engine":1,"task":0,"stride":2}}]})";
  r = obs::check_trace_json(two_strides);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.stripe_violations, 0u);
}

TEST(TraceCheck, AcceptsNestedAndDisjointSpans) {
  // Events appear in emission order (RAII spans are recorded when they
  // *close*), so the inner span precedes its enclosing outer span.
  const char* doc = R"({"traceEvents":[
    {"ph":"X","pid":1,"tid":7,"name":"inner","ts":10,"dur":20},
    {"ph":"X","pid":1,"tid":7,"name":"outer","ts":0,"dur":100},
    {"ph":"X","pid":1,"tid":7,"name":"later","ts":200,"dur":50}]})";
  const auto r = obs::check_trace_json(doc);
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.spans, 3u);
  EXPECT_EQ(r.threads, 1u);
  EXPECT_EQ(r.worker_tracks, 0u);  // no "build" category
}

// ---- histograms ------------------------------------------------------------

TEST(Histogram, BucketBoundaries) {
  // Bucket 0 counts zeros; bucket i counts [2^(i-1), 2^i).
  EXPECT_EQ(obs::Histogram::bucket_index(0), 0);
  EXPECT_EQ(obs::Histogram::bucket_index(1), 1);
  EXPECT_EQ(obs::Histogram::bucket_index(2), 2);
  EXPECT_EQ(obs::Histogram::bucket_index(3), 2);
  EXPECT_EQ(obs::Histogram::bucket_index(4), 3);
  EXPECT_EQ(obs::Histogram::bucket_index((1u << 10) - 1), 10);
  EXPECT_EQ(obs::Histogram::bucket_index(1u << 10), 11);
  EXPECT_EQ(obs::Histogram::bucket_index(~0ull),
            obs::Histogram::kBuckets - 1);

  EXPECT_EQ(obs::HistogramSnapshot::bucket_upper_bound(0), 1u);
  EXPECT_EQ(obs::HistogramSnapshot::bucket_upper_bound(5), 32u);
}

TEST(Histogram, ConcurrentSubstrateBucketsAgree) {
  // The POD Log2Histogram in counters.hpp must bucket exactly like
  // obs::Histogram (that is what makes merge_buckets translation-free).
  for (const std::uint64_t v :
       {0ull, 1ull, 2ull, 3ull, 4ull, 7ull, 8ull, 1023ull, 1024ull,
        (1ull << 31) - 1, 1ull << 31, (1ull << 63) + 5, ~0ull}) {
    EXPECT_EQ(Log2Histogram::bucket_index(v), obs::Histogram::bucket_index(v))
        << "value " << v;
  }
}

TEST(Histogram, RecordSnapshotAndQuantiles) {
  obs::Histogram h;
  for (std::uint64_t v = 1; v <= 100; ++v) h.record(v);
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.sum, 5050u);
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 100u);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
  // Geometric-midpoint estimate: p50 lands in the [32,64) bucket.
  EXPECT_GE(s.quantile(0.5), 32.0);
  EXPECT_LE(s.quantile(0.5), 64.0);
  EXPECT_LE(s.quantile(0.1), s.quantile(0.9));
}

TEST(Histogram, MergeBucketsFromLog2Histogram) {
  Log2Histogram src;
  src.record(0);
  src.record(5);
  src.record(5);
  src.record(300);
  ASSERT_EQ(src.count(), 4u);

  obs::Histogram dst;
  std::uint64_t counts[Log2Histogram::kBuckets];
  for (int i = 0; i < Log2Histogram::kBuckets; ++i)
    counts[i] = src.buckets[i].load();
  dst.merge_buckets(counts, Log2Histogram::kBuckets, src.sum.load());

  const auto s = dst.snapshot();
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.sum, 310u);
  EXPECT_EQ(s.buckets[0], 1u);                               // the zero
  EXPECT_EQ(s.buckets[obs::Histogram::bucket_index(5)], 2u);
  EXPECT_EQ(s.buckets[obs::Histogram::bucket_index(300)], 1u);
}

// ---- metrics registry ------------------------------------------------------

TEST(Metrics, RegistryCountersGaugesHistograms) {
  auto& reg = obs::Registry::instance();
  reg.reset();
  reg.counter("test.counter").inc(3);
  reg.counter("test.counter").inc();        // same object
  reg.gauge("test.gauge").set(-7);
  reg.histogram("test.hist").record(16);

  const auto snap = reg.snapshot();
  bool saw_counter = false, saw_gauge = false, saw_hist = false;
  for (const auto& [name, v] : snap.counters)
    if (name == "test.counter") {
      saw_counter = true;
      EXPECT_EQ(v, 4u);
    }
  for (const auto& [name, v] : snap.gauges)
    if (name == "test.gauge") {
      saw_gauge = true;
      EXPECT_EQ(v, -7);
    }
  for (const auto& [name, h] : snap.histograms)
    if (name == "test.hist") {
      saw_hist = true;
      EXPECT_EQ(h.count, 1u);
      EXPECT_EQ(h.sum, 16u);
    }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_gauge);
  EXPECT_TRUE(saw_hist);
}

TEST(Metrics, NameKindConflictThrows) {
  auto& reg = obs::Registry::instance();
  reg.counter("test.kind.conflict");
  EXPECT_THROW(reg.gauge("test.kind.conflict"), std::logic_error);
  EXPECT_THROW(reg.histogram("test.kind.conflict"), std::logic_error);
}

TEST(Metrics, PrometheusExposition) {
  auto& reg = obs::Registry::instance();
  reg.reset();
  reg.counter("test.prom.counter").inc(9);
  reg.histogram("test.prom.hist").record(3);
  const std::string text = reg.to_prometheus();
  EXPECT_NE(text.find("test_prom_counter 9"), std::string::npos) << text;
  EXPECT_NE(text.find("test_prom_hist_count 1"), std::string::npos) << text;
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos) << text;
}

// Cycle-valued histograms must stay useful on hosts where the TSC
// calibration fails (tsc_hz() == 0): the derived block falls back to raw
// cycles with an explicit calibrated=false instead of disappearing.
TEST(Metrics, CyclesHistogramFallsBackToRawWhenUncalibrated) {
  auto& reg = obs::Registry::instance();
  reg.histogram("test.calib_cycles").record(1000);
  obs::set_cycles_ns_factor_override_for_test(0.0);  // simulate a no-TSC host
  const std::string json = reg.to_json();
  obs::set_cycles_ns_factor_override_for_test(-1.0);
  EXPECT_NE(json.find("\"calibrated\":false"), std::string::npos) << json;
  EXPECT_NE(json.find("\"unit\":\"cycles\""), std::string::npos) << json;
  // Raw sum passes through unscaled.
  EXPECT_NE(json.find("\"sum\":1000"), std::string::npos) << json;
}

TEST(Metrics, CyclesHistogramScalesWhenCalibrated) {
  auto& reg = obs::Registry::instance();
  reg.reset();
  reg.histogram("test.calib_cycles").record(1000);
  obs::set_cycles_ns_factor_override_for_test(2.0);  // 2 ns per cycle
  const std::string json = reg.to_json();
  obs::set_cycles_ns_factor_override_for_test(-1.0);
  EXPECT_NE(json.find("\"calibrated\":true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"unit\":\"ns\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"sum\":2000"), std::string::npos) << json;
}

// ---- stats export schemas --------------------------------------------------

TEST(StatsExport, BuildStatsSchema) {
  BuildStats stats;
  stats.sfa_states = 42;
  stats.dfa_states = 7;
  stats.seconds = 0.5;
  stats.threads = 4;
  std::ostringstream os;
  obs::write_build_stats_json(os, stats, "parallel",
                              /*include_metrics=*/false);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"schema\":\"sfa-build-stats/1\""), std::string::npos);
  EXPECT_NE(json.find("\"method\":\"parallel\""), std::string::npos);
  EXPECT_NE(json.find("\"sfa_states\":42"), std::string::npos);
  EXPECT_NE(json.find("\"threads\":4"), std::string::npos);
}

TEST(StatsExport, MatchStatsSchema) {
  obs::MatchRunInfo info;
  info.command = "match";
  info.input_symbols = 1000;
  info.threads = 2;
  info.seconds = 0.25;
  info.accepted = true;
  std::ostringstream os;
  obs::write_match_stats_json(os, info, /*include_metrics=*/false);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"schema\":\"sfa-match-stats/1\""), std::string::npos);
  EXPECT_NE(json.find("\"accepted\":true"), std::string::npos);
  EXPECT_NE(json.find("\"input_symbols\":1000"), std::string::npos);
  // Executor fields are always present (zero on the sequential path).
  EXPECT_NE(json.find("\"pool_workers\":0"), std::string::npos);
  EXPECT_NE(json.find("\"pool_dispatches\":0"), std::string::npos);
  EXPECT_NE(json.find("\"pool_wakeups\":0"), std::string::npos);
}

TEST(StatsExport, MatchStatsPoolFields) {
  obs::MatchRunInfo info;
  info.command = "match";
  info.pool_workers = 4;
  info.pool_dispatches = 12;
  info.pool_wakeups = 36;
  std::ostringstream os;
  obs::write_match_stats_json(os, info, /*include_metrics=*/false);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"pool_workers\":4"), std::string::npos);
  EXPECT_NE(json.find("\"pool_dispatches\":12"), std::string::npos);
  EXPECT_NE(json.find("\"pool_wakeups\":36"), std::string::npos);
}

// ---- BuildStats parity (satellite a) ---------------------------------------

TEST(BuildStatsParity, EveryBuilderFillsTheCoreFields) {
  const Dfa dfa = compile_prosite("R-G-[DE]-x-C.");
  for (const BuildMethod method :
       {BuildMethod::kBaseline, BuildMethod::kHashed, BuildMethod::kTransposed,
        BuildMethod::kParallel, BuildMethod::kProbabilistic}) {
    BuildOptions opt;
    opt.num_threads = 2;
    BuildStats stats;
    const Sfa sfa = build_sfa(dfa, method, opt, &stats);
    SCOPED_TRACE(build_method_name(method));
    EXPECT_EQ(stats.sfa_states, sfa.num_states());
    EXPECT_GT(stats.sfa_states, 0u);
    EXPECT_EQ(stats.dfa_states, dfa.size());
    EXPECT_GT(stats.seconds, 0.0);
    EXPECT_GE(stats.threads, 1u);
    EXPECT_GT(stats.mapping_bytes_uncompressed, 0u);
  }
}

TEST(BuildStatsParity, SequentialHashedBuildersCountLookupWork) {
  // find_counted parity: sequential hashed/transposed builders now count
  // chain traversals on the lookup path, so any DFA with duplicate successor
  // states (i.e. every non-trivial one) must report nonzero traversals.
  const Dfa dfa = compile_prosite("R-G-[DE]-x-C.");
  BuildOptions opt;
  for (const BuildMethod method :
       {BuildMethod::kHashed, BuildMethod::kTransposed}) {
    BuildStats stats;
    build_sfa(dfa, method, opt, &stats);
    SCOPED_TRACE(build_method_name(method));
    EXPECT_GT(stats.chain_traversals, 0u);
  }
}

// ---- traced parallel build (acceptance scenario; needs SFA_TRACE=ON) -------

TEST(TracedBuild, ParallelWorkersProduceDistinctTracks) {
#if !(defined(SFA_TRACE_ENABLED) && SFA_TRACE_ENABLED)
  GTEST_SKIP() << "instrumentation compiled out (build with SFA_TRACE=ON)";
#else
  auto& collector = obs::TraceCollector::instance();
  collector.start();
  const Dfa dfa = compile_prosite("C-x-[DN]-x(4)-[FY]-x-C.");
  BuildOptions opt;
  opt.num_threads = 4;
  opt.keep_mappings = false;
  build_sfa_parallel(dfa, opt);
  collector.stop();

  std::ostringstream os;
  collector.write_chrome_json(os);
  const obs::TraceCheckResult r = obs::check_trace_json(os.str());
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_GE(r.worker_tracks, 4u);
  const std::string json = os.str();
  EXPECT_NE(json.find("global-phase"), std::string::npos);
  EXPECT_NE(json.find("local-phase"), std::string::npos);
  EXPECT_NE(json.find("builder/worker"), std::string::npos);
#endif
}

}  // namespace
